//! Shared experiment drivers: one function per paper table/figure.

use facet_core::{raw_subsumption_terms, PipelineOptions};
use facet_corpus::RecipeKind;
use facet_eval::annotators::AnnotatorConfig;
use facet_eval::efficiency::{efficiency_table, measure_efficiency};
use facet_eval::harness::{run_grid, DatasetBundle, GridOptions};
use facet_eval::pilot::pilot_study;
use facet_eval::precision::{precision_grid, PrecisionJudge};
use facet_eval::recall::recall_grid;
use facet_eval::sensitivity::sensitivity_curve;
use facet_eval::userstudy::{run_user_study, user_study_table, UserStudyConfig};
use facet_eval::GoldAnnotations;
use facet_eval::Table;

/// Build a dataset bundle at the given scale (1.0 = paper scale).
pub fn scaled_bundle(kind: RecipeKind, scale: f64) -> DatasetBundle {
    DatasetBundle::build(kind, scale)
}

/// The recall/precision gold standard: a 1,000-story sample annotated by
/// 5 annotators with the ≥2 agreement rule (Section V-B).
pub fn dataset_gold(bundle: &DatasetBundle, sample_size: usize) -> GoldAnnotations {
    facet_eval::harness::default_gold(bundle, sample_size)
}

/// Run the extractor × resource grid and return the recall and precision
/// tables (Tables II–VII) plus the gold-set size (the paper reports
/// 633 / 756 / 703 distinct facet terms).
pub fn run_dataset_tables(
    kind: RecipeKind,
    scale: f64,
    top_k: usize,
) -> (Table, Table, usize, DatasetBundle) {
    run_dataset_tables_recorded(kind, scale, top_k, facet_obs::Recorder::disabled_ref())
}

/// [`run_dataset_tables`] with an observability recorder threaded into
/// the grid: stage spans, per-resource query counts and latencies, web
/// query counts, and cache hit/miss counters all land in `recorder`.
pub fn run_dataset_tables_recorded(
    kind: RecipeKind,
    scale: f64,
    top_k: usize,
    recorder: &facet_obs::Recorder,
) -> (Table, Table, usize, DatasetBundle) {
    let mut bundle = {
        let _span = recorder.span("build_bundle");
        scaled_bundle(kind, scale)
    };
    let gold = {
        let _span = recorder.span("gold");
        dataset_gold(&bundle, 1000)
    };
    let gold_terms: Vec<String> = gold
        .gold_terms(&bundle.world)
        .into_iter()
        .map(str::to_string)
        .collect();
    let options = GridOptions {
        pipeline: PipelineOptions {
            top_k,
            ..Default::default()
        },
        build_hierarchies: true,
        subsumption_doc_cap: 3000,
        recorder: recorder.clone(),
    };
    let cells = run_grid(&mut bundle, &options);
    let _score_span = recorder.span("score");
    let name = kind.name();
    let gold_refs: Vec<&str> = gold_terms.iter().map(String::as_str).collect();
    let recall = recall_grid(
        &format!("Recall of extracted facets ({name})"),
        &cells,
        &gold_refs,
    );
    let judge = PrecisionJudge::default();
    let precision = precision_grid(
        &format!("Precision of extracted facets ({name})"),
        &cells,
        &bundle.world,
        &judge,
    );
    (recall, precision, gold_terms.len(), bundle)
}

/// Table I + the 65% statistic: the pilot study over 1,000 SNYT stories
/// with 12 annotators.
pub fn run_pilot(scale: f64) -> (Table, f64) {
    let bundle = scaled_bundle(RecipeKind::Snyt, scale);
    let n = bundle.corpus.db.len().min(1000);
    let sample: Vec<usize> = (0..n).collect();
    let pilot = pilot_study(&bundle.world, &bundle.corpus, &sample, 12, 0x9170);
    let mut t = Table::new(
        "Table I: facets identified by human annotators (pilot study, SNYT)",
        &["Facet", "Sub-facets (most used)", "Annotated stories"],
    );
    for (root, count, subs) in &pilot.dimensions {
        t.row(&[root.clone(), subs.join(", "), count.to_string()]);
    }
    (t, pilot.missing_rate)
}

/// Figure 4: the most frequent annotator-identified facet terms.
pub fn run_figure4(scale: f64, top: usize) -> Vec<(String, usize)> {
    let bundle = scaled_bundle(RecipeKind::Snyt, scale);
    let gold = dataset_gold(&bundle, 1000);
    gold.term_counts
        .iter()
        .take(top)
        .map(|&(n, c)| (bundle.world.ontology.node(n).term.clone(), c))
        .collect()
}

/// Figure 5: the plain subsumption baseline's top terms (generic words).
pub fn run_figure5(scale: f64, top: usize) -> Vec<String> {
    let bundle = scaled_bundle(RecipeKind::Snyt, scale);
    let (terms, _forest) = raw_subsumption_terms(&bundle.corpus.db, &bundle.vocab, top);
    terms
        .iter()
        .map(|&t| bundle.vocab.term(t).to_string())
        .collect()
}

/// The Section V-B sensitivity study: facet-term discovery vs. sample
/// size (the paper: ~40% at 100 docs, ~80% at 500).
pub fn run_sensitivity(kind: RecipeKind, scale: f64) -> Table {
    let bundle = scaled_bundle(kind, scale);
    let max = bundle.corpus.db.len().min(1000);
    let steps: Vec<usize> = [100usize, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
        .iter()
        .copied()
        .filter(|&s| s <= max)
        .collect();
    let curve = sensitivity_curve(
        &bundle.world,
        &bundle.corpus,
        &AnnotatorConfig::default(),
        &steps,
    );
    let mut t = Table::new(
        &format!(
            "Facet-term discovery vs annotated sample size ({})",
            kind.name()
        ),
        &[
            "Documents",
            "Distinct facet terms",
            "Fraction of full gold set",
        ],
    );
    for p in curve {
        t.row(&[
            p.docs.to_string(),
            p.terms.to_string(),
            format!("{:.2}", p.fraction),
        ]);
    }
    t
}

/// The Section V-D efficiency study.
pub fn run_efficiency(kind: RecipeKind, scale: f64, sample_docs: usize) -> Table {
    let mut bundle = scaled_bundle(kind, scale);
    let rows = measure_efficiency(&mut bundle, sample_docs);
    efficiency_table(&format!("Efficiency ({})", kind.name()), &rows)
}

/// The Section V-E user study.
pub fn run_user_study_experiment(scale: f64) -> Table {
    let mut bundle = scaled_bundle(RecipeKind::Snyt, scale);
    let stats = run_user_study(&mut bundle, &UserStudyConfig::default());
    user_study_table("User study: 5 users × 5 sessions (SNYT)", &stats)
}

/// Ablation study (design choices the paper motivates):
///
/// 1. **log-likelihood vs chi-square** ranking of candidate facet terms
///    (Section IV-C argues chi-square's assumptions fail on Zipfian text);
/// 2. **plain subsumption vs evidence-combination** hierarchy
///    construction (end of Section IV cites Snow et al. as the upgrade).
///
/// Returns a rendered table of recall/precision per variant on SNYT.
pub fn run_ablation(scale: f64, top_k: usize) -> Table {
    // The ranking statistic only matters when k is tight enough that
    // ranking decides inclusion; cap it so the comparison is informative.
    let top_k = top_k.min(500);
    use facet_core::{
        build_evidence_forest, EvidenceParams, FacetPipeline, HypernymHints, SelectionStatistic,
    };
    use facet_eval::harness::default_gold;
    use facet_eval::judge_model::JudgeModel;
    use facet_eval::precision::PrecisionJudge;
    use facet_ner::NerTagger;
    use facet_resources::{
        CachedResource, ContextResource, WikiGraphResource, WordNetHypernymsResource,
    };
    use facet_termx::{
        NamedEntityExtractor, TermExtractor, WikipediaTitleExtractor, YahooTermExtractor,
    };
    use facet_wikipedia::{TitleIndex, WikipediaGraph};

    let mut bundle = scaled_bundle(RecipeKind::Snyt, scale);
    let gold = default_gold(&bundle, 1000);
    let gold_terms: Vec<String> = gold
        .gold_terms(&bundle.world)
        .into_iter()
        .map(str::to_string)
        .collect();

    let tagger = NerTagger::from_world(&bundle.world);
    let ne = NamedEntityExtractor::new(tagger);
    let yahoo = YahooTermExtractor::fit(&bundle.corpus.db, &bundle.vocab);
    let title_index = TitleIndex::build(&bundle.wiki.wiki, &bundle.wiki.redirects);
    let wiki_x = WikipediaTitleExtractor::new(&bundle.wiki.wiki, title_index);
    let graph = WikipediaGraph::new(&bundle.wiki.wiki, &bundle.wiki.redirects);
    let graph_res = CachedResource::new(WikiGraphResource::new(&graph));
    let wn_res = CachedResource::new(WordNetHypernymsResource::new(&bundle.wordnet));

    let judge = PrecisionJudge::default();
    let mut table = Table::new(
        "Ablation (SNYT): selection statistic and hierarchy construction",
        &["Variant", "Recall", "Precision"],
    );

    for (label, statistic, evidence) in [
        (
            "log-likelihood + subsumption (paper)",
            SelectionStatistic::LogLikelihood,
            false,
        ),
        (
            "chi-square + subsumption",
            SelectionStatistic::ChiSquare,
            false,
        ),
        (
            "log-likelihood + evidence hierarchy",
            SelectionStatistic::LogLikelihood,
            true,
        ),
    ] {
        let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo, &wiki_x];
        let resources: Vec<&dyn ContextResource> = vec![&graph_res, &wn_res];
        let pipeline = FacetPipeline::new(
            extractors,
            resources,
            facet_core::PipelineOptions {
                top_k,
                ..Default::default()
            },
        )
        .with_statistic(statistic);
        let extraction = pipeline.run(&bundle.corpus.db, &mut bundle.vocab);

        // Recall.
        let selected: std::collections::HashSet<&str> = extraction
            .candidates
            .iter()
            .map(|c| bundle.vocab.term(c.term))
            .collect();
        let recall = gold_terms
            .iter()
            .filter(|g| selected.contains(g.as_str()))
            .count() as f64
            / gold_terms.len().max(1) as f64;

        // Hierarchy: plain subsumption or evidence combination.
        let terms: Vec<_> = extraction.candidates.iter().map(|c| c.term).collect();
        let parents: Vec<(String, Option<String>)> = if evidence {
            // Hints from the WordNet resource: a candidate's hypernyms
            // that are themselves candidates.
            let mut hints = HypernymHints::new();
            let selected_ids: std::collections::HashMap<&str, facet_textkit::TermId> =
                terms.iter().map(|&t| (bundle.vocab.term(t), t)).collect();
            for &t in &terms {
                let term_str = bundle.vocab.term(t).to_string();
                for h in wn_res.context_terms(&term_str) {
                    if let Some(&p) = selected_ids.get(h.as_str()) {
                        hints.add(t, p);
                    }
                }
            }
            let forest = build_evidence_forest(
                &terms,
                &extraction.contextualized.doc_terms,
                &hints,
                EvidenceParams::default(),
            );
            forest
                .terms
                .iter()
                .enumerate()
                .map(|(i, &t)| {
                    let parent =
                        forest.parent[i].map(|p| bundle.vocab.term(forest.terms[p]).to_string());
                    (bundle.vocab.term(t).to_string(), parent)
                })
                .collect()
        } else {
            use facet_core::{build_subsumption_forest, SubsumptionParams};
            let forest = build_subsumption_forest(
                &terms,
                &extraction.contextualized.doc_terms,
                SubsumptionParams::default(),
            );
            forest
                .terms
                .iter()
                .enumerate()
                .map(|(i, &t)| {
                    let parent =
                        forest.parent[i].map(|p| bundle.vocab.term(forest.terms[p]).to_string());
                    (bundle.vocab.term(t).to_string(), parent)
                })
                .collect()
        };

        let cell = facet_eval::harness::GridCell {
            extractor: "All".into(),
            resource: label.into(),
            candidates: extraction
                .candidates
                .iter()
                .map(|c| facet_eval::harness::CandidateOut {
                    term: bundle.vocab.term(c.term).to_string(),
                    df: c.df,
                    df_c: c.df_c,
                    score: c.score,
                })
                .collect(),
            parents,
        };
        let model = JudgeModel::new(&bundle.world);
        let precision = judge.precision_with_model(&cell, &model);
        table.row(&[
            label.to_string(),
            format!("{recall:.3}"),
            format!("{precision:.3}"),
        ]);
    }
    table
}

/// Baseline comparison: our pipeline vs the related-work systems the
/// paper discusses (Castanet-style WordNet-only, the supervised approach
/// of \[18\], and the Figure 5 raw-subsumption terms).
pub fn run_baselines(scale: f64, top_k: usize) -> Table {
    use facet_eval::baselines::{castanet_baseline, supervised_baseline, supervised_vocabulary};
    use facet_eval::harness::{default_gold, run_grid, GridOptions};

    let mut bundle = scaled_bundle(RecipeKind::Snyt, scale);
    let gold = default_gold(&bundle, 1000);
    let gold_terms: Vec<String> = gold
        .gold_terms(&bundle.world)
        .into_iter()
        .map(str::to_string)
        .collect();
    let recall_of = |terms: &[String]| -> f64 {
        let set: std::collections::HashSet<&str> = terms.iter().map(String::as_str).collect();
        gold_terms
            .iter()
            .filter(|g| set.contains(g.as_str()))
            .count() as f64
            / gold_terms.len().max(1) as f64
    };

    let mut table = Table::new(
        "Baselines vs the paper's pipeline (SNYT)",
        &["System", "Facet vocabulary", "Recall of gold terms"],
    );

    // Figure 5 baseline.
    let fig5 = facet_core::raw_subsumption_terms(&bundle.corpus.db, &bundle.vocab, 400);
    let fig5_terms: Vec<String> = fig5
        .0
        .iter()
        .map(|&t| bundle.vocab.term(t).to_string())
        .collect();
    table.row(&[
        "raw subsumption (Figure 5)".into(),
        fig5_terms.len().to_string(),
        format!("{:.3}", recall_of(&fig5_terms)),
    ]);

    // Castanet-style WordNet-only.
    let castanet = castanet_baseline(&bundle, &bundle.wordnet, 600);
    table.row(&[
        "WordNet-only (Castanet-style)".into(),
        castanet.len().to_string(),
        format!("{:.3}", recall_of(&castanet)),
    ]);

    // Supervised [18] trained on half the dimensions.
    let training: Vec<_> = ["location", "people", "markets", "event"]
        .iter()
        .filter_map(|t| bundle.world.ontology.find(t))
        .collect();
    let assignments = supervised_baseline(&bundle, &bundle.wordnet, &training, 600);
    let sup_vocab = supervised_vocabulary(&assignments);
    table.row(&[
        "supervised [18] (4 training facets)".into(),
        sup_vocab.len().to_string(),
        format!("{:.3}", recall_of(&sup_vocab)),
    ]);

    // Our pipeline (All × All).
    let options = GridOptions {
        pipeline: facet_core::PipelineOptions {
            top_k,
            ..Default::default()
        },
        build_hierarchies: false,
        subsumption_doc_cap: 3000,
        ..Default::default()
    };
    let cells = run_grid(&mut bundle, &options);
    let ours = cells
        .iter()
        .find(|c| c.extractor == "All" && c.resource == "All")
        .expect("grid has the All cell");
    let our_terms: Vec<String> = ours.candidates.iter().map(|c| c.term.clone()).collect();
    table.row(&[
        "this paper (All extractors × All resources)".into(),
        our_terms.len().to_string(),
        format!("{:.3}", recall_of(&our_terms)),
    ]);
    table
}

/// Interner outcome counters captured from an index vocabulary at the
/// end of a bench run (DESIGN.md §16): `intern()` calls answered from
/// the probe table (`hits`) vs. arena appends (`misses`), the final
/// distinct-symbol count, and the derived hit rate.
#[derive(Debug, serde::Serialize)]
pub struct InternMetrics {
    /// `intern` calls answered by an existing symbol.
    pub hits: u64,
    /// `intern` calls that appended a new symbol.
    pub misses: u64,
    /// Distinct symbols interned.
    pub len: usize,
    /// `hits / (hits + misses)` (0.0 when unused).
    pub hit_rate: f64,
}

impl From<facet_textkit::InternStats> for InternMetrics {
    fn from(s: facet_textkit::InternStats) -> Self {
        Self {
            hits: s.hits,
            misses: s.misses,
            len: s.len,
            hit_rate: s.hit_rate(),
        }
    }
}

/// One batch of the incremental-vs-rebuild benchmark.
#[derive(Debug, serde::Serialize)]
pub struct IncrementalBenchBatch {
    /// 1-based batch number.
    pub batch: usize,
    /// Documents in this batch.
    pub docs: usize,
    /// Wall time of `FacetIndex::append` for this batch.
    pub append_ms: f64,
    /// Wall time of a from-scratch `FacetIndex::build` over the prefix.
    pub rebuild_ms: f64,
    /// Resource queries the append issued (new-distinct terms only).
    pub append_resource_queries: u64,
    /// Resource queries the rebuild issued (every distinct term).
    pub rebuild_resource_queries: u64,
}

/// The incremental-vs-rebuild benchmark report (`BENCH_2.json`).
#[derive(Debug, serde::Serialize)]
pub struct IncrementalBenchReport {
    /// Dataset recipe name.
    pub dataset: String,
    /// Total documents indexed.
    pub total_docs: usize,
    /// Number of append batches.
    pub n_batches: usize,
    /// Total wall time across all appends.
    pub append_total_ms: f64,
    /// Total wall time across all from-scratch rebuilds.
    pub rebuild_total_ms: f64,
    /// `rebuild_total_ms / append_total_ms`.
    pub speedup: f64,
    /// Indexing throughput of the incremental path: net-new documents
    /// divided by total append wall time.
    pub append_docs_per_sec: f64,
    /// Indexing throughput of the rebuild path **on the same basis**:
    /// net-new documents divided by total rebuild wall time. Directly
    /// comparable with `append_docs_per_sec` — the wall-clock `speedup`
    /// equals their ratio.
    pub rebuild_docs_per_sec: f64,
    /// The rebuild path's internal processing rate: cumulatively
    /// re-indexed documents (each prefix counted once per rebuild)
    /// divided by total rebuild wall time. This measures how fast the
    /// rebuild loop chews through documents, *not* archive growth — it
    /// exceeds `rebuild_docs_per_sec` by roughly (n_batches+1)/2 because
    /// the same early documents are re-processed every round.
    pub rebuild_reprocessed_docs_per_sec: f64,
    /// Total resource queries on the incremental path.
    pub append_resource_queries: u64,
    /// Total resource queries across the rebuilds.
    pub rebuild_resource_queries: u64,
    /// Final interner counters of the incremental index's vocabulary.
    pub intern: InternMetrics,
    /// Headline numbers of this benchmark at the commit immediately
    /// before the interner refactor (same host, default scale/batches),
    /// kept in the report so the before/after effect of symbol
    /// interning stays visible next to the regenerated numbers.
    pub before_interning: PreInterningIncremental,
    /// Per-batch breakdown.
    pub batches: Vec<IncrementalBenchBatch>,
}

/// Pre-interning headline numbers for the incremental benchmark.
#[derive(Debug, serde::Serialize)]
pub struct PreInterningIncremental {
    /// Total append wall time before the refactor.
    pub append_total_ms: f64,
    /// Total rebuild wall time before the refactor.
    pub rebuild_total_ms: f64,
    /// Append-vs-rebuild speedup before the refactor.
    pub speedup: f64,
}

/// Benchmark the incremental `FacetIndex::append` path against repeated
/// full rebuilds over a growing SNYT-style archive: the corpus arrives
/// in `n_batches` slices, and after each slice both strategies must have
/// an up-to-date facet index. Rebuilds use a fresh resource cache per
/// round (a real rebuild starts cold); the incremental index keeps its
/// cross-batch expansion cache, which is exactly the advantage being
/// measured.
pub fn run_incremental_bench(scale: f64, n_batches: usize) -> IncrementalBenchReport {
    use facet_core::FacetIndex;
    use facet_ner::NerTagger;
    use facet_obs::Recorder;
    use facet_resources::{CachedResource, ContextResource, WikiGraphResource};
    use facet_termx::{NamedEntityExtractor, TermExtractor};
    use facet_wikipedia::WikipediaGraph;
    use std::time::Instant;

    let bundle = scaled_bundle(RecipeKind::Snyt, scale);
    let graph = WikipediaGraph::new(&bundle.wiki.wiki, &bundle.wiki.redirects);
    let tagger = NerTagger::from_world(&bundle.world);
    let ne = NamedEntityExtractor::new(tagger);
    let docs = bundle.corpus.db.docs().to_vec();
    let per = docs.len().div_ceil(n_batches.max(1));
    let options = PipelineOptions::default();
    let queries_of = |r: &Recorder| {
        r.snapshot_counts_only()
            .get("counter.resource.Wikipedia Graph.queries")
            .copied()
            .unwrap_or(0)
    };

    // Incremental path: one persistent index, one persistent cache.
    let inc_res = CachedResource::new(WikiGraphResource::new(&graph));
    let inc_recorder = Recorder::enabled();
    let extractors: Vec<&dyn TermExtractor> = vec![&ne];
    let resources: Vec<&dyn ContextResource> = vec![&inc_res];
    let mut index =
        FacetIndex::new(extractors, resources, options.clone()).with_recorder(inc_recorder.clone());

    let mut batches = Vec::new();
    let mut prev_queries = 0u64;
    for (i, chunk) in docs.chunks(per).enumerate() {
        let t = Instant::now();
        index
            .append(chunk.to_vec())
            .expect("bench batches are well-formed");
        let append_ms = t.elapsed().as_secs_f64() * 1e3;
        let append_queries = queries_of(&inc_recorder) - prev_queries;
        prev_queries += append_queries;

        // Rebuild path: index the whole prefix from scratch, cold caches.
        let prefix_end = (per * (i + 1)).min(docs.len());
        let rebuild_res = CachedResource::new(WikiGraphResource::new(&graph));
        let rebuild_recorder = Recorder::enabled();
        let extractors: Vec<&dyn TermExtractor> = vec![&ne];
        let resources: Vec<&dyn ContextResource> = vec![&rebuild_res];
        let t = Instant::now();
        let rebuilt = FacetIndex::new(extractors, resources, options.clone())
            .with_recorder(rebuild_recorder.clone());
        let mut rebuilt = rebuilt;
        rebuilt
            .append(docs[..prefix_end].to_vec())
            .expect("bench batches are well-formed");
        let rebuild_ms = t.elapsed().as_secs_f64() * 1e3;

        batches.push(IncrementalBenchBatch {
            batch: i + 1,
            docs: chunk.len(),
            append_ms,
            rebuild_ms,
            append_resource_queries: append_queries,
            rebuild_resource_queries: queries_of(&rebuild_recorder),
        });
    }

    let append_total_ms: f64 = batches.iter().map(|b| b.append_ms).sum();
    let rebuild_total_ms: f64 = batches.iter().map(|b| b.rebuild_ms).sum();
    let rebuild_docs: usize = (1..=batches.len()).map(|i| (per * i).min(docs.len())).sum();
    IncrementalBenchReport {
        dataset: RecipeKind::Snyt.name().to_string(),
        total_docs: docs.len(),
        n_batches: batches.len(),
        append_total_ms,
        rebuild_total_ms,
        speedup: rebuild_total_ms / append_total_ms.max(1e-9),
        append_docs_per_sec: docs.len() as f64 / (append_total_ms / 1e3).max(1e-9),
        rebuild_docs_per_sec: docs.len() as f64 / (rebuild_total_ms / 1e3).max(1e-9),
        rebuild_reprocessed_docs_per_sec: rebuild_docs as f64 / (rebuild_total_ms / 1e3).max(1e-9),
        append_resource_queries: batches.iter().map(|b| b.append_resource_queries).sum(),
        rebuild_resource_queries: batches.iter().map(|b| b.rebuild_resource_queries).sum(),
        intern: index.intern_stats().into(),
        // Captured at the pre-interner commit with the default
        // `--scale 0.2 --batches 5` configuration on the same host.
        before_interning: PreInterningIncremental {
            append_total_ms: 67.75,
            rebuild_total_ms: 109.73,
            speedup: 1.62,
        },
        batches,
    }
}

/// One shard count of the sharded-append benchmark sweep.
#[derive(Debug, serde::Serialize)]
pub struct ShardBenchRun {
    /// Shard count of this run.
    pub shards: usize,
    /// Total wall time across all appends.
    pub append_total_ms: f64,
    /// Net-new documents divided by total append wall time.
    pub append_docs_per_sec: f64,
    /// Unsharded `FacetIndex` wall time divided by this run's wall time
    /// (>1 means the sharded path was faster).
    pub speedup_vs_unsharded: f64,
    /// Whether this run's snapshot is string-identical (facet terms,
    /// statistics, score bits, forest edges) to the unsharded build.
    pub identical_to_batch: bool,
    /// Queries that reached the wrapped resource (shared-cache misses).
    pub resource_queries: u64,
    /// Final interner counters of the merged (cross-shard) vocabulary.
    /// `len` is content-determined, so it must match across shard
    /// counts; hits count cross-shard duplicate terms folded by the
    /// u32 remap merge, so single-shard runs are mostly misses.
    pub intern: InternMetrics,
}

/// The sharded-append benchmark report (`BENCH_3.json`).
#[derive(Debug, serde::Serialize)]
pub struct ShardBenchReport {
    /// Dataset recipe name.
    pub dataset: String,
    /// Total documents indexed.
    pub total_docs: usize,
    /// Number of append batches per run.
    pub n_batches: usize,
    /// Cores the host offered the process. Shard workers are OS threads,
    /// so this bounds any parallel speedup: on a single-core host every
    /// sharded run pays partition/merge overhead with no parallelism to
    /// buy it back.
    pub host_cpus: usize,
    /// Unsharded `FacetIndex` wall time over the same batches (baseline).
    pub unsharded_total_ms: f64,
    /// Final interner counters of the unsharded baseline's vocabulary.
    pub unsharded_intern: InternMetrics,
    /// Headline numbers of this benchmark at the commit immediately
    /// before the interner refactor (same host, default configuration).
    pub before_interning: PreInterningShard,
    /// The sweep, in shard-count order.
    pub runs: Vec<ShardBenchRun>,
}

/// Pre-interning headline numbers for the shard benchmark.
#[derive(Debug, serde::Serialize)]
pub struct PreInterningShard {
    /// Unsharded baseline wall time before the refactor, when shard
    /// merges re-hashed every term string instead of remapping u32
    /// symbols.
    pub unsharded_total_ms: f64,
}

/// Benchmark `ShardedFacetIndex` against the unsharded `FacetIndex` over
/// the same growing SNYT-style archive: the corpus arrives in `n_batches`
/// slices and each shard count in `shard_counts` indexes all of them.
/// Every sharded run is also checked string-identical to the unsharded
/// build — a sweep that gets faster by diverging is worthless.
pub fn run_shard_bench(scale: f64, n_batches: usize, shard_counts: &[usize]) -> ShardBenchReport {
    use facet_core::{FacetIndex, FacetSnapshot, ShardedFacetIndex};
    use facet_ner::NerTagger;
    use facet_resources::{CachedResource, ContextResource, WikiGraphResource};
    use facet_termx::{NamedEntityExtractor, TermExtractor};
    use facet_wikipedia::WikipediaGraph;
    use std::time::Instant;

    let bundle = scaled_bundle(RecipeKind::Snyt, scale);
    let graph = WikipediaGraph::new(&bundle.wiki.wiki, &bundle.wiki.redirects);
    let tagger = NerTagger::from_world(&bundle.world);
    let ne = NamedEntityExtractor::new(tagger);
    let docs = bundle.corpus.db.docs().to_vec();
    let per = docs.len().div_ceil(n_batches.max(1));
    let options = PipelineOptions::default();

    // Id-free view of a snapshot, for the identical-to-batch check:
    // candidate rows (term, df, df_c, score bits) plus forest edges.
    type SnapshotOutputs = (Vec<(String, u64, u64, u64)>, Vec<(String, String)>);
    let outputs = |snap: &FacetSnapshot| -> SnapshotOutputs {
        let rows = snap
            .candidates()
            .iter()
            .map(|c| {
                (
                    snap.vocab().term(c.term).to_string(),
                    c.df,
                    c.df_c,
                    c.score.to_bits(),
                )
            })
            .collect();
        (rows, snap.forest().edges())
    };

    // Baseline: the unsharded index over the same batches.
    let base_res = CachedResource::new(WikiGraphResource::new(&graph));
    let extractors: Vec<&dyn TermExtractor> = vec![&ne];
    let resources: Vec<&dyn ContextResource> = vec![&base_res];
    let mut baseline = FacetIndex::new(extractors, resources, options.clone());
    let t = Instant::now();
    for chunk in docs.chunks(per) {
        baseline
            .append(chunk.to_vec())
            .expect("bench batches are well-formed");
    }
    let unsharded_total_ms = t.elapsed().as_secs_f64() * 1e3;
    let expected = outputs(&baseline.snapshot());

    let mut runs = Vec::new();
    for &shards in shard_counts {
        let res = CachedResource::new(WikiGraphResource::new(&graph));
        let extractors: Vec<&dyn TermExtractor> = vec![&ne];
        let resources: Vec<&dyn ContextResource> = vec![&res];
        let mut index = ShardedFacetIndex::new(shards, extractors, resources, options.clone());
        let t = Instant::now();
        for chunk in docs.chunks(per) {
            index
                .append(chunk.to_vec())
                .expect("bench batches are well-formed");
        }
        let append_total_ms = t.elapsed().as_secs_f64() * 1e3;
        runs.push(ShardBenchRun {
            shards,
            append_total_ms,
            append_docs_per_sec: docs.len() as f64 / (append_total_ms / 1e3).max(1e-9),
            speedup_vs_unsharded: unsharded_total_ms / append_total_ms.max(1e-9),
            identical_to_batch: outputs(&index.snapshot()) == expected,
            resource_queries: index.resource_cache_stats().iter().map(|s| s.misses).sum(),
            intern: index.intern_stats().into(),
        });
    }

    ShardBenchReport {
        dataset: RecipeKind::Snyt.name().to_string(),
        total_docs: docs.len(),
        n_batches: docs.chunks(per).count(),
        host_cpus: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        unsharded_total_ms,
        unsharded_intern: baseline.intern_stats().into(),
        // Captured at the pre-interner commit with the default
        // `--scale 0.2 --batches 5` configuration on the same host.
        before_interning: PreInterningShard {
            unsharded_total_ms: 48.05,
        },
        runs,
    }
}

/// One fault seed of the resilience benchmark.
#[derive(Debug, serde::Serialize)]
pub struct ResilienceFaultRun {
    /// Seed of the deterministic fault plan.
    pub fault_seed: u64,
    /// Per-term failure probability in permille.
    pub failure_permille: u16,
    /// Wall time of the degraded build (faults active).
    pub build_ms: f64,
    /// Terms that lost coverage during the degraded build.
    pub degraded_terms: usize,
    /// Wall time of the [`facet_core::FacetIndex::repair`] backfill after
    /// the fault healed.
    pub repair_ms: f64,
    /// Degraded terms re-queried by the repair pass.
    pub requeried_terms: usize,
    /// Terms whose coverage the repair pass restored.
    pub repaired_terms: usize,
    /// Documents whose contextualized rows the repair recomputed.
    pub changed_docs: usize,
    /// Whether the repaired snapshot is string-identical to the
    /// fault-free build and reports full coverage.
    pub converged: bool,
}

/// The resilience benchmark report (`BENCH_4.json`).
#[derive(Debug, serde::Serialize)]
pub struct ResilienceBenchReport {
    /// Dataset recipe name.
    pub dataset: String,
    /// Total documents indexed per build.
    pub total_docs: usize,
    /// Timed iterations per configuration (wall times below are the
    /// mean across iterations, with the per-iteration samples and the
    /// sample standard deviation reported alongside).
    pub iterations: usize,
    /// Per-iteration wall times of the fault-free build with raw
    /// resources (no policy layer).
    pub baseline_samples_ms: Vec<f64>,
    /// Per-iteration wall times of the fault-free build with every
    /// resource behind a [`facet_resources::ResilientResource`]
    /// (retries + breaker armed, never triggered).
    pub resilient_samples_ms: Vec<f64>,
    /// Mean fault-free build time with raw resources.
    pub baseline_build_ms: f64,
    /// Sample standard deviation of the baseline iterations.
    pub baseline_stddev_ms: f64,
    /// Mean fault-free build time behind the policy layer.
    pub resilient_build_ms: f64,
    /// Sample standard deviation of the resilient iterations.
    pub resilient_stddev_ms: f64,
    /// `(resilient - baseline) / baseline` on the means, in percent.
    /// May be negative when the difference is inside scheduler noise.
    pub overhead_raw_pct: f64,
    /// The noise band, in percent of the baseline mean: one combined
    /// standard deviation of the two sample sets.
    pub overhead_noise_pct: f64,
    /// Whether the measured overhead is indistinguishable from noise
    /// (`|overhead_raw_pct| <= overhead_noise_pct`).
    pub overhead_within_noise: bool,
    /// Reported overhead: the raw percentage clamped below at zero —
    /// a negative measurement means "within noise", not a speedup. The
    /// acceptance bar is ≤ 5% on the fault-free path, or within noise.
    pub overhead_pct: f64,
    /// Whether the policy-wrapped fault-free build is string-identical
    /// to the baseline.
    pub resilient_identical: bool,
    /// Final interner counters of the last fault-free baseline build's
    /// vocabulary.
    pub intern: InternMetrics,
    /// Headline numbers of this benchmark at the commit immediately
    /// before the interner refactor (same host, default configuration).
    pub before_interning: PreInterningResilience,
    /// One degraded-build + repair cycle per fault seed.
    pub fault_runs: Vec<ResilienceFaultRun>,
}

/// Pre-interning headline numbers for the resilience benchmark.
#[derive(Debug, serde::Serialize)]
pub struct PreInterningResilience {
    /// Mean fault-free build time with raw resources before the
    /// refactor.
    pub baseline_build_ms: f64,
    /// Mean fault-free build time behind the policy layer before the
    /// refactor.
    pub resilient_build_ms: f64,
    /// Raw overhead percentage before the refactor (negative = within
    /// noise).
    pub overhead_raw_pct: f64,
}

/// Mean of a non-empty sample set.
fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len().max(1) as f64
}

/// Sample standard deviation (Bessel-corrected); zero for n < 2.
fn sample_stddev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    let var = samples.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / (samples.len() - 1) as f64;
    var.sqrt()
}

/// Benchmark the resilience layer: what does wrapping every resource in
/// a [`facet_resources::ResilientResource`] cost on the fault-free path,
/// and how expensive is a degraded build plus its
/// [`facet_core::FacetIndex::repair`] backfill under seeded faults.
///
/// Fault-free builds run `iterations` times; the report carries every
/// per-iteration sample plus mean and sample standard deviation, and the
/// overhead percentage compares the means with an explicit noise band —
/// a measured difference smaller than one combined standard deviation is
/// flagged `overhead_within_noise` and a negative raw overhead is
/// clamped to zero rather than reported as a speedup.
pub fn run_resilience_bench(scale: f64, iterations: usize, seeds: &[u64]) -> ResilienceBenchReport {
    use facet_core::{FacetIndex, FacetSnapshot};
    use facet_ner::NerTagger;
    use facet_resources::{
        ContextResource, ExpansionOptions, FaultPlan, FaultyResource, ResilientResource,
        VirtualClock, WikiGraphResource, WordNetHypernymsResource,
    };
    use facet_termx::{NamedEntityExtractor, TermExtractor, YahooTermExtractor};
    use facet_wikipedia::WikipediaGraph;
    use std::time::Instant;

    let bundle = scaled_bundle(RecipeKind::Snyt, scale);
    let graph = WikipediaGraph::new(&bundle.wiki.wiki, &bundle.wiki.redirects);
    let tagger = NerTagger::from_world(&bundle.world);
    let ne = NamedEntityExtractor::new(tagger);
    // Yahoo terms include common nouns, so WordNet hypernyms (the faulted
    // resource below) genuinely shape the contextualized database.
    let yahoo = YahooTermExtractor::fit(&bundle.corpus.db, &bundle.vocab);
    let docs = bundle.corpus.db.docs().to_vec();
    let options = PipelineOptions {
        // Serial expansion keeps the breaker's shed set deterministic, so
        // the degraded-terms column is reproducible run to run.
        expansion: ExpansionOptions { threads: 1 },
        ..PipelineOptions::default()
    };
    let iterations = iterations.max(1);

    type SnapshotOutputs = (Vec<(String, u64, u64, u64)>, Vec<(String, String)>);
    let outputs = |snap: &FacetSnapshot| -> SnapshotOutputs {
        let rows = snap
            .candidates()
            .iter()
            .map(|c| {
                (
                    snap.vocab().term(c.term).to_string(),
                    c.df,
                    c.df_c,
                    c.score.to_bits(),
                )
            })
            .collect();
        (rows, snap.forest().edges())
    };

    // Fault-free comparison: raw resources vs the same resources behind
    // ResilientResource (retries and breaker armed, never triggered) —
    // the overhead the acceptance bar caps. The two configurations are
    // interleaved within each iteration so scheduler/thermal noise hits
    // both sides alike, and the means are compared.
    let mut baseline_samples_ms: Vec<f64> = Vec::with_capacity(iterations);
    let mut resilient_samples_ms: Vec<f64> = Vec::with_capacity(iterations);
    let mut resilient_identical = true;
    let mut expected: Option<SnapshotOutputs> = None;
    let mut intern_stats = facet_textkit::InternStats::default();
    for _ in 0..iterations {
        let graph_res = WikiGraphResource::new(&graph);
        let wn_res = WordNetHypernymsResource::new(&bundle.wordnet);
        let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
        let resources: Vec<&dyn ContextResource> = vec![&graph_res, &wn_res];
        let t = Instant::now();
        let index = FacetIndex::build(docs.clone(), extractors, resources, options.clone())
            .expect("bench corpus is well-formed");
        baseline_samples_ms.push(t.elapsed().as_secs_f64() * 1e3);
        expected.get_or_insert_with(|| outputs(&index.snapshot()));
        intern_stats = index.intern_stats();

        let clock = VirtualClock::new();
        let graph_res = ResilientResource::new(WikiGraphResource::new(&graph), clock.clone());
        let wn_res = ResilientResource::new(
            WordNetHypernymsResource::new(&bundle.wordnet),
            clock.clone(),
        );
        let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
        let resources: Vec<&dyn ContextResource> = vec![&graph_res, &wn_res];
        let t = Instant::now();
        let index = FacetIndex::build(docs.clone(), extractors, resources, options.clone())
            .expect("bench corpus is well-formed");
        resilient_samples_ms.push(t.elapsed().as_secs_f64() * 1e3);
        resilient_identical &=
            outputs(&index.snapshot()) == *expected.as_ref().expect("baseline ran first");
    }
    let expected = expected.expect("at least one iteration ran");

    // Degraded build + repair cycle per fault seed: WordNet fails for a
    // seeded subset of terms, the build degrades gracefully, the fault
    // heals, and repair() backfills only the degraded terms.
    let permille = 300u16;
    let mut fault_runs = Vec::new();
    for &seed in seeds {
        let clock = VirtualClock::new();
        let graph_res = WikiGraphResource::new(&graph);
        let faulty = FaultyResource::new(
            WordNetHypernymsResource::new(&bundle.wordnet),
            FaultPlan::seeded(seed, permille),
            clock.clone(),
        );
        let wn_res = ResilientResource::new(faulty, clock.clone());
        let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
        let resources: Vec<&dyn ContextResource> = vec![&graph_res, &wn_res];
        let t = Instant::now();
        let mut index = FacetIndex::build(docs.clone(), extractors, resources, options.clone())
            .expect("bench corpus is well-formed");
        let build_ms = t.elapsed().as_secs_f64() * 1e3;
        let degraded_terms = index.snapshot().degraded().len();

        wn_res.inner().heal();
        // Let any breaker cooldown elapse on the virtual clock.
        clock.advance_us(1_000_000);
        let t = Instant::now();
        let stats = index.repair().expect("repair on a healed resource");
        let repair_ms = t.elapsed().as_secs_f64() * 1e3;
        let snap = index.snapshot();
        fault_runs.push(ResilienceFaultRun {
            fault_seed: seed,
            failure_permille: permille,
            build_ms,
            degraded_terms,
            repair_ms,
            requeried_terms: stats.requeried_terms,
            repaired_terms: stats.repaired_terms,
            changed_docs: stats.changed_docs,
            converged: snap.is_fully_covered() && outputs(&snap) == expected,
        });
    }

    let baseline_build_ms = mean(&baseline_samples_ms);
    let resilient_build_ms = mean(&resilient_samples_ms);
    let baseline_stddev_ms = sample_stddev(&baseline_samples_ms);
    let resilient_stddev_ms = sample_stddev(&resilient_samples_ms);
    let overhead_raw_pct =
        (resilient_build_ms - baseline_build_ms) / baseline_build_ms.max(1e-9) * 100.0;
    // One combined standard deviation of the difference of means, as a
    // percentage of the baseline mean.
    let overhead_noise_pct = (baseline_stddev_ms * baseline_stddev_ms
        + resilient_stddev_ms * resilient_stddev_ms)
        .sqrt()
        / baseline_build_ms.max(1e-9)
        * 100.0;
    ResilienceBenchReport {
        dataset: RecipeKind::Snyt.name().to_string(),
        total_docs: docs.len(),
        iterations,
        baseline_samples_ms,
        resilient_samples_ms,
        baseline_build_ms,
        baseline_stddev_ms,
        resilient_build_ms,
        resilient_stddev_ms,
        overhead_raw_pct,
        overhead_noise_pct,
        overhead_within_noise: overhead_raw_pct.abs() <= overhead_noise_pct,
        overhead_pct: overhead_raw_pct.max(0.0),
        resilient_identical,
        intern: intern_stats.into(),
        // Captured at the pre-interner commit with the default
        // `--scale 0.2 --iters 3` configuration on the same host.
        before_interning: PreInterningResilience {
            baseline_build_ms: 54.29,
            resilient_build_ms: 53.23,
            overhead_raw_pct: -1.97,
        },
        fault_runs,
    }
}

/// Supplementary analysis: recall per facet dimension plus the
/// composition of the All×All candidate list (what fraction of extracted
/// terms are facet concepts, entity names, concept nouns, or other
/// corpus terms).
pub fn run_dimensions(kind: RecipeKind, scale: f64, top_k: usize) -> (Table, Table) {
    use facet_eval::analysis::{candidate_composition, dimension_table};
    use facet_eval::harness::{default_gold, run_grid, GridOptions};
    let mut bundle = scaled_bundle(kind, scale);
    let gold = default_gold(&bundle, 1000);
    let options = GridOptions {
        pipeline: facet_core::PipelineOptions {
            top_k,
            ..Default::default()
        },
        build_hierarchies: false,
        subsumption_doc_cap: 3000,
        ..Default::default()
    };
    let cells = run_grid(&mut bundle, &options);
    let all = cells
        .iter()
        .find(|c| c.extractor == "All" && c.resource == "All")
        .expect("grid has the All cell");
    let dims = dimension_table(
        &format!("Recall by facet dimension ({}, All × All)", kind.name()),
        all,
        &bundle.world,
        &gold,
    );
    let mut comp = Table::new(
        &format!("Candidate composition ({}, All × All)", kind.name()),
        &["Class", "Candidates"],
    );
    for (class, n) in candidate_composition(all, &bundle.world) {
        comp.row(&[class.to_string(), n.to_string()]);
    }
    (dims, comp)
}

/// Configuration of the serving-tier load benchmark.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LoadBenchConfig {
    /// Corpus scale (1.0 = paper scale).
    pub scale: f64,
    /// Shard count of the serving index.
    pub shards: usize,
    /// Concurrent reader threads in the contended phase.
    pub readers: usize,
    /// Queries each reader issues in the contended phase.
    pub queries_per_reader: usize,
    /// Append batches the writer publishes while readers run.
    pub mid_run_appends: usize,
    /// Zipf exponent of the query mix (rank 0 = most prominent facet).
    pub zipf_exponent: f64,
    /// RNG seed; reader `r` derives its stream from `seed + r`.
    pub seed: u64,
}

impl Default for LoadBenchConfig {
    fn default() -> Self {
        Self {
            scale: 0.2,
            shards: 4,
            readers: 4,
            queries_per_reader: 300,
            mid_run_appends: 3,
            zipf_exponent: 1.07,
            seed: 42,
        }
    }
}

/// The serving-tier load benchmark report (`BENCH_5.json`).
#[derive(Debug, serde::Serialize)]
pub struct LoadBenchReport {
    /// Dataset recipe name.
    pub dataset: String,
    /// The configuration that produced this report.
    pub config: LoadBenchConfig,
    /// Documents indexed before the contended phase started.
    pub initial_docs: usize,
    /// Documents indexed after all mid-run appends landed.
    pub total_docs: usize,
    /// Cores the host offered the process (bounds reader parallelism).
    pub host_cpus: usize,
    /// Distinct labels in the Zipfian query pool (forest roots first,
    /// then their children, in forest order).
    pub query_pool: usize,
    /// Published generation after the final append.
    pub final_generation: u64,
    /// Signature-cache hits during the contended phase.
    pub cache_hits: u64,
    /// Signature-cache misses during the contended phase.
    pub cache_misses: u64,
    /// `hits / (hits + misses)` of the contended phase.
    pub cache_hit_rate: f64,
    /// Cache entries dropped by generation bumps over the whole run.
    pub cache_invalidations: u64,
    /// p50 latency of `ServeHandle::browse` under contention, µs.
    pub browse_p50_us: f64,
    /// p99 latency of `ServeHandle::browse` under contention, µs.
    pub browse_p99_us: f64,
    /// p50 latency of a guaranteed cache hit (quiescent, single
    /// thread), µs.
    pub cached_hit_p50_us: f64,
    /// p99 latency of a guaranteed cache hit (quiescent, single
    /// thread), µs.
    pub cached_hit_p99_us: f64,
    /// p50 latency of an uncached fan-out re-selection over the same
    /// queries (quiescent, single thread), µs.
    pub uncached_p50_us: f64,
    /// p99 latency of an uncached fan-out re-selection over the same
    /// queries (quiescent, single thread), µs.
    pub uncached_p99_us: f64,
    /// `uncached_p50_us / cached_hit_p50_us` — the ISSUE 8 acceptance
    /// bar is ≥ 2.
    pub cached_vs_uncached_speedup: f64,
    /// Same-generation cached-vs-uncached byte-identity comparisons
    /// performed during the contended phase (one per browse whose
    /// pinned snapshot still matched the answer's generation).
    pub identity_checks: u64,
    /// Comparisons skipped because a concurrent append moved the
    /// generation between the cached answer and the pinned snapshot.
    pub identity_skipped_generation_race: u64,
    /// Byte-identity failures — must be 0.
    pub identity_mismatches: u64,
    /// FNV-1a digest over the canonical browse output of every pool
    /// query before and after the appends, plus the pool itself. Two
    /// runs of the same configuration must produce the same digest.
    pub digest: String,
}

/// Nearest-rank percentile over an unsorted sample of nanosecond
/// latencies, reported in microseconds (cache hits are sub-µs, so the
/// samples are captured at nanosecond resolution).
fn percentile_us(samples: &mut [u64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx.min(samples.len() - 1)] as f64 / 1e3
}

/// Drive a seeded Zipfian query mix against a `FacetServer` under
/// concurrent appends (the tentpole measurement of ISSUE 8).
///
/// Three phases:
/// 1. **Baseline (quiescent, single thread)** — every pool query is
///    answered uncached (timed), then twice through the cache so the
///    second answer is a guaranteed hit (timed). The cached and
///    uncached answers are asserted byte-identical; canonical outputs
///    fold into the determinism digest.
/// 2. **Contended** — `readers` threads each replay their own seeded
///    Zipfian mix through a shared [`facet_core::ServeHandle`] while
///    the writer appends `mid_run_appends` batches. Every browse is
///    re-answered uncached against a pinned snapshot and compared
///    byte-for-byte whenever the generations match (a concurrent
///    publish between the two reads is counted, not compared).
/// 3. **Post-append sweep (quiescent)** — every pool query again, at
///    the final generation, folded into the digest: same config ⇒
///    same digest, run to run.
pub fn run_load_bench(config: &LoadBenchConfig) -> LoadBenchReport {
    use facet_core::{fanout_browse, FacetServer, ShardedFacetIndex};
    use facet_ner::NerTagger;
    use facet_resources::{CachedResource, ContextResource, WikiGraphResource};
    use facet_termx::{NamedEntityExtractor, TermExtractor};
    use facet_textkit::Zipf;
    use facet_wikipedia::WikipediaGraph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Instant;

    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let fold = |digest: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *digest ^= u64::from(b);
            *digest = digest.wrapping_mul(FNV_PRIME);
        }
    };

    let bundle = scaled_bundle(RecipeKind::Snyt, config.scale);
    let graph = WikipediaGraph::new(&bundle.wiki.wiki, &bundle.wiki.redirects);
    let tagger = NerTagger::from_world(&bundle.world);
    let ne = NamedEntityExtractor::new(tagger);
    let docs = bundle.corpus.db.docs().to_vec();
    let options = PipelineOptions::default();
    let res = CachedResource::new(WikiGraphResource::new(&graph));
    let extractors: Vec<&dyn TermExtractor> = vec![&ne];
    let resources: Vec<&dyn ContextResource> = vec![&res];

    // Reserve the tail of the corpus for the mid-run appends.
    let appends = config.mid_run_appends;
    let batch = (docs.len() / 20).max(1);
    let reserved = (batch * appends).min(docs.len().saturating_sub(1));
    let (initial, tail) = docs.split_at(docs.len() - reserved);
    let append_batches: Vec<Vec<_>> = tail.chunks(batch.max(1)).map(<[_]>::to_vec).collect();

    let mut index = ShardedFacetIndex::new(config.shards, extractors, resources, options);
    index
        .append(initial.to_vec())
        .expect("bench batches are well-formed");
    let mut server = FacetServer::new(index);
    let handle = server.handle();

    // Query pool: forest roots then their children, forest order.
    let snapshot = server.snapshot();
    let forest = snapshot.merged().forest();
    let mut pool: Vec<String> = Vec::new();
    for tree in &forest.trees {
        pool.push(forest.label(&tree.root).to_string());
        for child in &tree.root.children {
            pool.push(forest.label(child).to_string());
        }
    }
    let mut seen = std::collections::HashSet::new();
    pool.retain(|label| seen.insert(label.clone()));
    if pool.is_empty() {
        // Degenerate corpus (ultra-small smoke scales): fall back to
        // the ranked candidate labels so the bench still exercises the
        // cache machinery.
        let merged = snapshot.merged();
        pool = merged
            .candidates()
            .iter()
            .take(16)
            .map(|c| merged.vocab().term(c.term).to_string())
            .collect();
    }
    assert!(!pool.is_empty(), "load bench needs a non-empty query pool");

    // Pre-draw every reader's Zipfian mix so the contended phase does
    // no RNG work and two runs replay identical query streams.
    let zipf = Zipf::new(pool.len(), config.zipf_exponent);
    let mixes: Vec<Vec<Vec<String>>> = (0..config.readers)
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(config.seed + r as u64);
            (0..config.queries_per_reader)
                .map(|_| {
                    let first = zipf.sample(rng.gen::<f64>());
                    let mut q = vec![pool[first].clone()];
                    if rng.gen::<f64>() < 0.25 {
                        q.push(pool[zipf.sample(rng.gen::<f64>())].clone());
                    }
                    q
                })
                .collect()
        })
        .collect();

    // Phase 1 — quiescent baseline over the whole pool.
    let mut digest = FNV_OFFSET;
    for label in &pool {
        fold(&mut digest, label.as_bytes());
        fold(&mut digest, &[0xFE]);
    }
    let mut uncached_us: Vec<u64> = Vec::with_capacity(pool.len());
    let mut hit_us: Vec<u64> = Vec::with_capacity(pool.len());
    for label in &pool {
        let query = [label.as_str()];
        let t = Instant::now();
        let uncached = handle.browse_uncached(&query);
        uncached_us.push(t.elapsed().as_nanos() as u64);
        let primed = handle.browse(&query);
        let t = Instant::now();
        let cached = handle.browse(&query);
        hit_us.push(t.elapsed().as_nanos() as u64);
        assert!(
            std::sync::Arc::ptr_eq(&primed, &cached),
            "second browse of an unchanged generation must be a cache hit"
        );
        let canon = uncached.canonical();
        assert_eq!(
            canon,
            cached.canonical(),
            "cached browse diverged from uncached re-selection for {label:?}"
        );
        fold(&mut digest, canon.as_bytes());
    }

    // Phase 2 — contended: readers replay their mixes while the writer
    // appends. Every browse is checked byte-identical against a fresh
    // fan-out whenever the pinned snapshot still has the answer's
    // generation.
    let stats_before = handle.cache_stats();
    let mut browse_us: Vec<u64> = Vec::new();
    let mut identity_checks = 0u64;
    let mut identity_skipped = 0u64;
    let mut identity_mismatches = 0u64;
    std::thread::scope(|scope| {
        let workers: Vec<_> = mixes
            .iter()
            .map(|mix| {
                let h = handle.clone();
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(mix.len());
                    let (mut checks, mut skipped, mut bad) = (0u64, 0u64, 0u64);
                    for q in mix {
                        let query: Vec<&str> = q.iter().map(String::as_str).collect();
                        let t = Instant::now();
                        let answer = h.browse(&query);
                        lat.push(t.elapsed().as_nanos() as u64);
                        let pinned = h.snapshot();
                        if pinned.generation() == answer.generation {
                            let fresh = fanout_browse(&pinned, &query);
                            checks += 1;
                            if fresh.canonical() != answer.canonical() {
                                bad += 1;
                            }
                        } else {
                            skipped += 1;
                        }
                    }
                    (lat, checks, skipped, bad)
                })
            })
            .collect();
        for batch in append_batches {
            server.append(batch).expect("bench batches are well-formed");
            std::thread::yield_now();
        }
        for worker in workers {
            let (lat, checks, skipped, bad) = worker.join().expect("reader thread panicked");
            browse_us.extend(lat);
            identity_checks += checks;
            identity_skipped += skipped;
            identity_mismatches += bad;
        }
    });
    let stats_after = handle.cache_stats();

    // Phase 3 — post-append deterministic sweep at the final generation.
    let final_snapshot = server.snapshot();
    for label in &pool {
        let fresh = fanout_browse(&final_snapshot, &[label.as_str()]);
        fold(&mut digest, fresh.canonical().as_bytes());
    }

    let hits = stats_after.hits - stats_before.hits;
    let misses = stats_after.misses - stats_before.misses;
    let uncached_p50 = percentile_us(&mut uncached_us, 0.50);
    let hit_p50 = percentile_us(&mut hit_us, 0.50);
    LoadBenchReport {
        dataset: RecipeKind::Snyt.name().to_string(),
        config: config.clone(),
        initial_docs: initial.len(),
        total_docs: docs.len(),
        host_cpus: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        query_pool: pool.len(),
        final_generation: final_snapshot.generation(),
        cache_hits: hits,
        cache_misses: misses,
        cache_hit_rate: hits as f64 / ((hits + misses) as f64).max(1.0),
        cache_invalidations: stats_after.invalidations,
        browse_p50_us: percentile_us(&mut browse_us, 0.50),
        browse_p99_us: percentile_us(&mut browse_us, 0.99),
        cached_hit_p50_us: hit_p50,
        cached_hit_p99_us: percentile_us(&mut hit_us, 0.99),
        uncached_p50_us: uncached_p50,
        uncached_p99_us: percentile_us(&mut uncached_us, 0.99),
        cached_vs_uncached_speedup: uncached_p50 / hit_p50.max(1e-3),
        identity_checks,
        identity_skipped_generation_race: identity_skipped,
        identity_mismatches,
        digest: format!("{digest:016x}"),
    }
}

/// One corruption drill of the durability benchmark.
#[derive(Debug, serde::Serialize)]
pub struct DurabilityFaultDrill {
    /// Seed of the deterministic damage position.
    pub fault_seed: u64,
    /// Damage scenario: `"corrupt-section"` (one flipped bit in the
    /// newest snapshot file) or `"torn-tail"` (the WAL cut mid-record,
    /// as a crash during an append would leave it).
    pub scenario: String,
    /// Wall time of the `open_from` recovery under this damage.
    pub recover_ms: f64,
    /// Whether recovery fell back past the newest snapshot.
    pub fell_back: bool,
    /// Whether recovery truncated a torn WAL tail.
    pub tail_truncated: bool,
    /// WAL records replayed through the live append/repair paths.
    pub replayed_records: usize,
    /// Generation of the snapshot the recovery restarted from (the
    /// newest one that verified; replay continues past it).
    pub recovered_generation: u64,
    /// Whether the recovered index — plus, for a torn tail, a retry of
    /// the one unacknowledged batch — is digest-identical to the
    /// reference build.
    pub digest_match: bool,
}

/// The durability benchmark report (`BENCH_6.json`).
#[derive(Debug, serde::Serialize)]
pub struct DurabilityBenchReport {
    /// Dataset recipe name.
    pub dataset: String,
    /// Total documents indexed per build.
    pub total_docs: usize,
    /// Timed iterations per configuration (means below, with the
    /// per-iteration samples and sample standard deviation alongside).
    pub iterations: usize,
    /// Size of one full-corpus snapshot file on disk.
    pub snapshot_bytes: u64,
    /// Sections in that snapshot (verified by re-decoding the file).
    pub snapshot_sections: usize,
    /// Per-iteration wall times of `persist_to` into a fresh store.
    pub persist_samples_ms: Vec<f64>,
    /// Mean snapshot publication time.
    pub persist_ms: f64,
    /// Sample standard deviation of the persist iterations.
    pub persist_stddev_ms: f64,
    /// Snapshot publication throughput, decimal MB/s.
    pub snapshot_write_mb_s: f64,
    /// Per-iteration wall times of a from-scratch `FacetIndex::build`
    /// (the recovery alternative the store exists to avoid).
    pub rebuild_samples_ms: Vec<f64>,
    /// Mean from-scratch rebuild time.
    pub rebuild_ms: f64,
    /// Sample standard deviation of the rebuild iterations.
    pub rebuild_stddev_ms: f64,
    /// Per-iteration wall times of `open_from` on a healthy
    /// snapshot-only store (no WAL tail to replay).
    pub recover_samples_ms: Vec<f64>,
    /// Mean snapshot recovery time.
    pub recover_ms: f64,
    /// Sample standard deviation of the recover iterations.
    pub recover_stddev_ms: f64,
    /// `rebuild_ms / recover_ms` — the headline number; the acceptance
    /// bar requires recovery at least 5× faster than rebuilding.
    pub recovery_vs_rebuild_speedup: f64,
    /// Whether every snapshot recovery was clean (no fallback, no
    /// replay) and digest-identical to the batch build.
    pub recover_digest_match: bool,
    /// WAL records physically present in the incremental template's
    /// tail (including one already covered by the newest snapshot).
    pub wal_tail_records: usize,
    /// Bytes of that WAL tail on disk.
    pub wal_tail_bytes: u64,
    /// Wall time of `open_from` on the clean incremental template
    /// (snapshot load plus WAL-tail replay).
    pub replay_recover_ms: f64,
    /// Records the clean replay recovery applied.
    pub replay_replayed_records: usize,
    /// WAL replay throughput in records per second.
    pub wal_replay_records_per_s: f64,
    /// Whether the replay recovery converged digest-identically to the
    /// live incremental build.
    pub replay_digest_match: bool,
    /// One corrupt-section and one torn-tail drill per fault seed.
    pub fault_drills: Vec<DurabilityFaultDrill>,
}

/// Seeded deterministic draw for damage positions (FNV-1a mix; mirrors
/// the recovery integration tests).
fn damage_draw(seed: u64, salt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in salt.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Copy a flat store directory (snapshot files + WAL) into a fresh
/// target so each drill damages its own copy of the template.
fn copy_store_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).expect("create drill dir");
    for entry in std::fs::read_dir(src).expect("read template dir") {
        let entry = entry.expect("read template entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy store file");
    }
}

/// Benchmark the durability tier: how fast is recovering an index from
/// a versioned snapshot (vs rebuilding it from the raw corpus), what
/// does WAL-tail replay cost per record, and does recovery converge
/// digest-identically under seeded corruption — a flipped byte in the
/// newest snapshot (fallback + full-tail replay) and a torn WAL tail (a
/// crash mid-append, truncate + retry).
///
/// The incremental template is built once per run — two snapshot
/// generations plus a three-record WAL tail — and every drill damages
/// its own copy, so the drills are independent and deterministic per
/// seed.
pub fn run_durability_bench(scale: f64, iterations: usize, seeds: &[u64]) -> DurabilityBenchReport {
    use facet_core::{FacetIndex, PipelineOptions};
    use facet_corpus::Document;
    use facet_ner::NerTagger;
    use facet_resources::{
        ContextResource, ExpansionOptions, WikiGraphResource, WordNetHypernymsResource,
    };
    use facet_store::{decode_snapshot, snapshot_file_name, FacetStore, WAL_FILE};
    use facet_termx::{NamedEntityExtractor, TermExtractor, YahooTermExtractor};
    use facet_wikipedia::WikipediaGraph;
    use std::fs;
    use std::time::Instant;

    let iterations = iterations.max(1);
    let bundle = scaled_bundle(RecipeKind::Snyt, scale);
    let graph = WikipediaGraph::new(&bundle.wiki.wiki, &bundle.wiki.redirects);
    let tagger = NerTagger::from_world(&bundle.world);
    let ne = NamedEntityExtractor::new(tagger);
    let yahoo = YahooTermExtractor::fit(&bundle.corpus.db, &bundle.vocab);
    let graph_res = WikiGraphResource::new(&graph);
    let wn_res = WordNetHypernymsResource::new(&bundle.wordnet);
    let docs = bundle.corpus.db.docs().to_vec();
    assert!(
        docs.len() >= 4,
        "durability bench needs at least 4 documents; raise --scale"
    );
    let options = PipelineOptions {
        // Serial expansion keeps builds and replays deterministic, so
        // digest comparisons are exact rather than probabilistic.
        expansion: ExpansionOptions { threads: 1 },
        ..PipelineOptions::default()
    };
    let root = std::env::temp_dir().join(format!("facet-durability-bench-{}", std::process::id()));
    fs::remove_dir_all(&root).ok();
    fs::create_dir_all(&root).expect("create bench scratch dir");

    // Rebuild baseline: a from-scratch batch build — the alternative
    // recovery path the snapshot store must beat.
    let mut rebuild_samples_ms: Vec<f64> = Vec::with_capacity(iterations);
    let mut reference_digest = 0u64;
    for _ in 0..iterations {
        let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
        let resources: Vec<&dyn ContextResource> = vec![&graph_res, &wn_res];
        let t = Instant::now();
        let index = FacetIndex::build(docs.clone(), extractors, resources, options.clone())
            .expect("bench corpus is well-formed");
        rebuild_samples_ms.push(t.elapsed().as_secs_f64() * 1e3);
        reference_digest = index.snapshot().digest();
    }

    // Snapshot publication: persist the batch build into a fresh store
    // per iteration (atomic write + fsync + rename + retention).
    let batch = {
        let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
        let resources: Vec<&dyn ContextResource> = vec![&graph_res, &wn_res];
        FacetIndex::build(docs.clone(), extractors, resources, options.clone())
            .expect("bench corpus is well-formed")
    };
    let mut persist_samples_ms: Vec<f64> = Vec::with_capacity(iterations);
    let mut snap_dir = root.join("persist-0");
    for i in 0..iterations {
        let dir = root.join(format!("persist-{i}"));
        let store = FacetStore::open(&dir).expect("open fresh store");
        let t = Instant::now();
        batch.persist_to(&store).expect("persist batch snapshot");
        persist_samples_ms.push(t.elapsed().as_secs_f64() * 1e3);
        snap_dir = dir;
    }
    let snap_file = fs::read(snap_dir.join(snapshot_file_name(1))).expect("read snapshot file");
    let snapshot_bytes = snap_file.len() as u64;
    let snapshot_sections = decode_snapshot(&snap_file)
        .expect("persisted snapshot verifies")
        .sections
        .len();

    // Snapshot recovery: reopen the persisted store cold and compare
    // against rebuilding from the corpus.
    let mut recover_samples_ms: Vec<f64> = Vec::with_capacity(iterations);
    let mut recover_digest_match = true;
    for _ in 0..iterations {
        let store = FacetStore::open(&snap_dir).expect("reopen persisted store");
        let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
        let resources: Vec<&dyn ContextResource> = vec![&graph_res, &wn_res];
        let t = Instant::now();
        let (recovered, report) =
            FacetIndex::open_from(&store, extractors, resources, options.clone())
                .expect("recover from a healthy snapshot");
        recover_samples_ms.push(t.elapsed().as_secs_f64() * 1e3);
        recover_digest_match &= !report.fell_back
            && report.replayed_records == 0
            && recovered.snapshot().digest() == reference_digest;
    }

    // Incremental template: two snapshot generations plus a WAL tail of
    // three records. Generation 4 lives only in the WAL, so recovery
    // must replay; the boundary before the last record lets the
    // torn-tail drills cut inside it.
    let quarter = docs.len().div_ceil(4);
    let chunks: Vec<Vec<Document>> = docs.chunks(quarter).map(<[Document]>::to_vec).collect();
    let template = root.join("template");
    let store = FacetStore::open(&template).expect("open template store");
    let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
    let resources: Vec<&dyn ContextResource> = vec![&graph_res, &wn_res];
    let mut live = FacetIndex::new(extractors, resources, options.clone());
    live.append_logged(chunks[0].clone(), &store)
        .expect("append chunk 0");
    live.persist_to(&store).expect("publish snapshot 1");
    live.append_logged(chunks[1].clone(), &store)
        .expect("append chunk 1");
    live.persist_to(&store).expect("publish snapshot 2");
    live.append_logged(chunks[2].clone(), &store)
        .expect("append chunk 2");
    let wal_boundary = fs::metadata(template.join(WAL_FILE))
        .expect("stat WAL")
        .len();
    live.append_logged(chunks[3].clone(), &store)
        .expect("append chunk 3");
    let incremental_digest = live.snapshot().digest();
    let wal_tail_bytes = fs::metadata(template.join(WAL_FILE))
        .expect("stat WAL")
        .len();
    // Retention keeps snapshots 1 and 2, so pruning left the record of
    // generation 2 plus the two unsnapshotted records (3 and 4).
    let wal_tail_records = 3usize;

    // Clean replay: snapshot 2 plus the two records past it.
    let replay_dir = root.join("replay");
    copy_store_dir(&template, &replay_dir);
    let store = FacetStore::open(&replay_dir).expect("open replay store");
    let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
    let resources: Vec<&dyn ContextResource> = vec![&graph_res, &wn_res];
    let t = Instant::now();
    let (replayed, report) = FacetIndex::open_from(&store, extractors, resources, options.clone())
        .expect("recover the clean incremental template");
    let replay_recover_ms = t.elapsed().as_secs_f64() * 1e3;
    let replay_replayed_records = report.replayed_records;
    let replay_digest_match = report.generation == 2
        && !report.fell_back
        && replayed.snapshot().digest() == incremental_digest;

    // Fault drills: each seed damages its own copy of the template.
    let mut fault_drills = Vec::new();
    for &seed in seeds {
        // A flipped bit anywhere in the newest snapshot breaks one of
        // its checksums; recovery must fall back to snapshot 1 and
        // replay the full three-record tail.
        let dir = root.join(format!("drill-corrupt-{seed:x}"));
        copy_store_dir(&template, &dir);
        let snap2 = dir.join(snapshot_file_name(2));
        let mut bytes = fs::read(&snap2).expect("read drill snapshot");
        let pos = (damage_draw(seed, 1) % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << (damage_draw(seed, 2) % 8);
        fs::write(&snap2, &bytes).expect("write damaged snapshot");
        let store = FacetStore::open(&dir).expect("open corrupt-drill store");
        let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
        let resources: Vec<&dyn ContextResource> = vec![&graph_res, &wn_res];
        let t = Instant::now();
        let (recovered, report) =
            FacetIndex::open_from(&store, extractors, resources, options.clone())
                .expect("fall back past the corrupt snapshot");
        let recover_ms = t.elapsed().as_secs_f64() * 1e3;
        fault_drills.push(DurabilityFaultDrill {
            fault_seed: seed,
            scenario: "corrupt-section".to_string(),
            recover_ms,
            fell_back: report.fell_back,
            tail_truncated: report.tail_truncated,
            replayed_records: report.replayed_records,
            recovered_generation: report.generation,
            digest_match: recovered.snapshot().digest() == incremental_digest,
        });

        // A WAL cut inside the last record models a crash mid-append:
        // recovery truncates the torn tail, converges to generation 3,
        // and the caller retries the one unacknowledged batch.
        let dir = root.join(format!("drill-torn-{seed:x}"));
        copy_store_dir(&template, &dir);
        let wal = dir.join(WAL_FILE);
        let len = fs::metadata(&wal).expect("stat drill WAL").len();
        let cut = wal_boundary + 1 + damage_draw(seed, 3) % (len - wal_boundary - 1);
        fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .expect("open drill WAL")
            .set_len(cut)
            .expect("tear drill WAL");
        let store = FacetStore::open(&dir).expect("open torn-drill store");
        let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
        let resources: Vec<&dyn ContextResource> = vec![&graph_res, &wn_res];
        let t = Instant::now();
        let (mut recovered, report) =
            FacetIndex::open_from(&store, extractors, resources, options.clone())
                .expect("truncate the torn tail and recover");
        let recover_ms = t.elapsed().as_secs_f64() * 1e3;
        recovered
            .append_logged(chunks[3].clone(), &store)
            .expect("retry the torn batch");
        fault_drills.push(DurabilityFaultDrill {
            fault_seed: seed,
            scenario: "torn-tail".to_string(),
            recover_ms,
            fell_back: report.fell_back,
            tail_truncated: report.tail_truncated,
            replayed_records: report.replayed_records,
            recovered_generation: report.generation,
            digest_match: recovered.snapshot().digest() == incremental_digest,
        });
    }
    fs::remove_dir_all(&root).ok();

    let persist_ms = mean(&persist_samples_ms);
    let rebuild_ms = mean(&rebuild_samples_ms);
    let recover_ms = mean(&recover_samples_ms);
    DurabilityBenchReport {
        dataset: RecipeKind::Snyt.name().to_string(),
        total_docs: docs.len(),
        iterations,
        snapshot_bytes,
        snapshot_sections,
        persist_stddev_ms: sample_stddev(&persist_samples_ms),
        persist_samples_ms,
        persist_ms,
        snapshot_write_mb_s: snapshot_bytes as f64 / 1e6 / (persist_ms / 1e3).max(1e-9),
        rebuild_stddev_ms: sample_stddev(&rebuild_samples_ms),
        rebuild_samples_ms,
        rebuild_ms,
        recover_stddev_ms: sample_stddev(&recover_samples_ms),
        recover_samples_ms,
        recover_ms,
        recovery_vs_rebuild_speedup: rebuild_ms / recover_ms.max(1e-9),
        recover_digest_match,
        wal_tail_records,
        wal_tail_bytes,
        replay_recover_ms,
        replay_replayed_records,
        wal_replay_records_per_s: replay_replayed_records as f64
            / (replay_recover_ms / 1e3).max(1e-9),
        replay_digest_match,
        fault_drills,
    }
}
