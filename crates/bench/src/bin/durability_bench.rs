//! Durability benchmark for the snapshot + WAL store.
//!
//! ```text
//! durability_bench [--scale <f>] [--iters <n>] [--seeds <a,b,c>] [--out <path>] [--smoke]
//! ```
//!
//! Measures (1) recovering an index from a versioned snapshot against
//! rebuilding it from the raw corpus (the acceptance bar: recovery at
//! least 5× faster), (2) snapshot publication and WAL-tail replay
//! throughput, and (3) seeded corruption drills — a flipped byte in the
//! newest snapshot (fallback + full-tail replay) and a torn WAL tail
//! (truncate + retry) — verifying every recovery converges
//! digest-identically. Writes the report as JSON (default `BENCH_6.json`
//! at the repo root) and prints a summary table.
//!
//! `--smoke` asserts the report invariants — a ≥2× speedup floor (the
//! committed baseline holds the 5× bar at full scale), digest identity
//! of every recovery, and the expected fallback/truncation flags per
//! drill — and exits non-zero on violation. Wired into
//! `scripts/check.sh --store-smoke` (and thus `--tier1`).

use facet_bench::run_durability_bench;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.2f64;
    let mut iters = 3usize;
    let mut seeds: Vec<u64> = vec![0xD1CE, 0xFEED5, 77];
    let mut out: Option<String> = None;
    let mut smoke = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                scale = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(0.2);
                i += 2;
            }
            "--iters" => {
                iters = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(3);
                i += 2;
            }
            "--seeds" => {
                seeds = argv
                    .get(i + 1)
                    .map(|s| s.split(',').filter_map(|p| p.trim().parse().ok()).collect())
                    .filter(|v: &Vec<u64>| !v.is_empty())
                    .unwrap_or(seeds);
                i += 2;
            }
            "--out" => {
                out = argv.get(i + 1).cloned();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        // Default to the repo root regardless of invocation cwd.
        format!("{}/../../BENCH_6.json", env!("CARGO_MANIFEST_DIR"))
    });

    let report = run_durability_bench(scale, iters, &seeds);
    println!(
        "durability ({}, {} docs, mean of {} iterations)",
        report.dataset, report.total_docs, report.iterations
    );
    println!(
        "snapshot: {} bytes, {} sections; persist {:.2}±{:.2} ms ({:.1} MB/s)",
        report.snapshot_bytes,
        report.snapshot_sections,
        report.persist_ms,
        report.persist_stddev_ms,
        report.snapshot_write_mb_s
    );
    println!(
        "recover {:.2}±{:.2} ms vs rebuild {:.1}±{:.1} ms — {:.1}x speedup (digest match: {})",
        report.recover_ms,
        report.recover_stddev_ms,
        report.rebuild_ms,
        report.rebuild_stddev_ms,
        report.recovery_vs_rebuild_speedup,
        report.recover_digest_match
    );
    println!(
        "WAL tail: {} records / {} bytes; replay {:.2} ms, {} applied \
         ({:.0} records/s, digest match: {})",
        report.wal_tail_records,
        report.wal_tail_bytes,
        report.replay_recover_ms,
        report.replay_replayed_records,
        report.wal_replay_records_per_s,
        report.replay_digest_match
    );
    println!(
        "{:>12} {:>16} {:>11} {:>9} {:>10} {:>9} {:>4} {:>6}",
        "fault seed", "scenario", "recover ms", "fellback", "truncated", "replayed", "gen", "match"
    );
    for d in &report.fault_drills {
        println!(
            "{:>#12x} {:>16} {:>11.2} {:>9} {:>10} {:>9} {:>4} {:>6}",
            d.fault_seed,
            d.scenario,
            d.recover_ms,
            d.fell_back,
            d.tail_truncated,
            d.replayed_records,
            d.recovered_generation,
            d.digest_match
        );
    }

    if smoke {
        // The committed profile holds the 5× bar at full scale; the
        // smoke floor is looser because tiny corpora shrink the rebuild
        // side of the ratio far more than the decode side.
        assert!(
            report.recovery_vs_rebuild_speedup >= 2.0,
            "snapshot recovery is only {:.2}x faster than a rebuild (floor: 2x)",
            report.recovery_vs_rebuild_speedup
        );
        assert!(
            report.recover_digest_match,
            "snapshot recovery diverged from the batch build"
        );
        assert!(
            report.replay_digest_match,
            "WAL-tail replay diverged from the live incremental build"
        );
        for d in &report.fault_drills {
            assert!(
                d.digest_match,
                "seed {:#x} {}: recovery did not converge to the reference digest",
                d.fault_seed, d.scenario
            );
            assert!(
                d.replayed_records >= 1,
                "seed {:#x} {}: recovery replayed nothing; the drill is inert",
                d.fault_seed,
                d.scenario
            );
            match d.scenario.as_str() {
                "corrupt-section" => assert!(
                    d.fell_back,
                    "seed {:#x}: the corrupt snapshot did not force a fallback",
                    d.fault_seed
                ),
                "torn-tail" => assert!(
                    d.tail_truncated,
                    "seed {:#x}: the torn WAL tail was not truncated",
                    d.fault_seed
                ),
                other => panic!("unknown drill scenario {other:?}"),
            }
        }
        println!("smoke assertions passed");
    }

    let json = facet_jsonio::to_json_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write benchmark report");
    println!("wrote {out}");
}
