//! Bench-regression gate: check benchmark report JSONs against the
//! committed per-metric thresholds, and verify exported trace files.
//!
//! ```text
//! bench_diff --spec BENCH_BASELINES.json --profile <name> [--dir <root>]
//! bench_diff --verify-trace <trace.json> [--require-span <name>]... [--min-depth <n>]
//! ```
//!
//! **Threshold mode** reads the spec (see `BENCH_BASELINES.json` at the
//! repo root), picks the named profile, and evaluates every check
//! against the referenced report files. Metric paths are dot-separated;
//! a `*` segment fans out over every element of an array. Check kinds:
//!
//! * `max` / `min` — the metric must be ≤ / ≥ `limit`. A check may name
//!   an `unless` path: when that boolean is `true` the check is waived
//!   (used for "overhead ≤ 5% *or* within the measured noise band").
//! * `true` — the metric must be boolean `true`.
//!
//! Any violated check prints a `REGRESSION` line and the process exits
//! non-zero, which is what wires the gate into `scripts/check.sh`.
//!
//! **Trace mode** parses a Chrome trace-event JSON export through
//! `facet_jsonio::parse_json`, requires each `--require-span` name to be
//! present as a complete (`"ph":"X"`) event, and checks that the deepest
//! `parent_id` chain reaches `--min-depth` levels.

use facet_jsonio::{parse_json, JsonValue};
use std::collections::HashMap;
use std::process::exit;

/// A resolved metric path: the values it matched, plus every place the
/// path died — a missing key, an out-of-range index, or a `*` over a
/// non-array/empty value. Dead ends are first-class so the gate can
/// refuse to pass a check that silently skipped part of a report: a
/// typo'd path dies at its first segment, and a partial `*` fan-out
/// (some array elements lacking the leaf field) dies at each gap even
/// while other elements match.
struct Resolution<'a> {
    /// `(full_path, value)` pairs the path matched.
    matches: Vec<(String, &'a JsonValue)>,
    /// Full paths (up to and including the failing segment) where
    /// resolution found nothing.
    dead_ends: Vec<String>,
}

/// Resolve a dot-separated path inside a parsed JSON value. A `*`
/// segment fans out over every array element; a numeric segment indexes
/// one.
fn resolve<'a>(value: &'a JsonValue, path: &str) -> Resolution<'a> {
    let mut frontier: Vec<(String, &JsonValue)> = vec![(String::new(), value)];
    let mut dead_ends = Vec::new();
    for seg in path.split('.') {
        let mut next = Vec::new();
        for (prefix, v) in frontier {
            let join = |s: &str| {
                if prefix.is_empty() {
                    s.to_string()
                } else {
                    format!("{prefix}.{s}")
                }
            };
            match seg {
                "*" => match v.as_array() {
                    Some(items) if !items.is_empty() => {
                        for (i, item) in items.iter().enumerate() {
                            next.push((join(&i.to_string()), item));
                        }
                    }
                    _ => dead_ends.push(join("*")),
                },
                _ => {
                    if let Some(child) = v.get(seg) {
                        next.push((join(seg), child));
                    } else if let (Ok(i), Some(items)) = (seg.parse::<usize>(), v.as_array()) {
                        if let Some(item) = items.get(i) {
                            next.push((join(seg), item));
                        } else {
                            dead_ends.push(join(seg));
                        }
                    } else {
                        dead_ends.push(join(seg));
                    }
                }
            }
        }
        frontier = next;
    }
    Resolution {
        matches: frontier,
        dead_ends,
    }
}

/// One check outcome; `Err` carries the human-readable regression line.
fn run_check(report: &JsonValue, file: &str, check: &JsonValue) -> Result<usize, Vec<String>> {
    let path = check.get("path").and_then(JsonValue::as_str).unwrap_or("");
    let kind = check.get("kind").and_then(JsonValue::as_str).unwrap_or("");
    let limit = check.get("limit").and_then(JsonValue::as_f64);
    let waived = |target: &JsonValue| -> bool {
        check
            .get("unless")
            .and_then(JsonValue::as_str)
            .map(|p| {
                // A waiver must resolve completely: a dead end anywhere
                // in the `unless` path means the check is NOT waived.
                let r = resolve(target, p);
                r.dead_ends.is_empty()
                    && !r.matches.is_empty()
                    && r.matches.iter().all(|(_, v)| v.as_bool() == Some(true))
            })
            .unwrap_or(false)
    };
    let found = resolve(report, path);
    // Any dead end fails the check, even when other fan-out branches
    // matched: a threshold the report silently stopped exporting (or a
    // typo'd spec path) must fail the gate, not skip it.
    if !found.dead_ends.is_empty() {
        return Err(found
            .dead_ends
            .iter()
            .map(|at| {
                format!(
                    "REGRESSION {file}: metric path `{path}` matches nothing at `{at}` \
                     (fix the spec path or restore the metric)"
                )
            })
            .collect());
    }
    if found.matches.is_empty() {
        return Err(vec![format!(
            "REGRESSION {file}: metric path `{path}` missing from report"
        )]);
    }
    let mut failures = Vec::new();
    for (at, v) in &found.matches {
        let ok = match kind {
            "max" => v.as_f64().map(|x| x <= limit.unwrap_or(f64::NEG_INFINITY)),
            "min" => v.as_f64().map(|x| x >= limit.unwrap_or(f64::INFINITY)),
            "true" => Some(v.as_bool() == Some(true)),
            other => {
                return Err(vec![format!(
                    "REGRESSION {file}: unknown check kind `{other}` for `{path}`"
                )])
            }
        };
        match ok {
            Some(true) => {}
            _ if kind != "true" && waived(report) => {}
            _ => {
                let shown = v
                    .as_f64()
                    .map(|x| format!("{x}"))
                    .or_else(|| v.as_bool().map(|b| b.to_string()))
                    .unwrap_or_else(|| "<non-numeric>".to_string());
                let bar = match kind {
                    "max" => format!("must be <= {}", limit.unwrap_or(f64::NAN)),
                    "min" => format!("must be >= {}", limit.unwrap_or(f64::NAN)),
                    _ => "must be true".to_string(),
                };
                failures.push(format!("REGRESSION {file}: `{at}` = {shown} ({bar})"));
            }
        }
    }
    if failures.is_empty() {
        Ok(found.matches.len())
    } else {
        Err(failures)
    }
}

fn run_profile(spec_path: &str, profile: &str, dir: &str) -> i32 {
    let spec_text = match std::fs::read_to_string(spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_diff: cannot read spec {spec_path}: {e}");
            return 2;
        }
    };
    let spec = match parse_json(&spec_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_diff: spec {spec_path} is not valid JSON: {e:?}");
            return 2;
        }
    };
    let Some(checks) = spec
        .get("profiles")
        .and_then(|p| p.get(profile))
        .and_then(|p| p.get("checks"))
        .and_then(JsonValue::as_array)
    else {
        eprintln!("bench_diff: spec has no profile `{profile}` with checks");
        return 2;
    };

    let mut reports: HashMap<String, Option<JsonValue>> = HashMap::new();
    let mut passed = 0usize;
    let mut regressions: Vec<String> = Vec::new();
    for check in checks {
        let file = check.get("file").and_then(JsonValue::as_str).unwrap_or("");
        let full = format!("{dir}/{file}");
        let report = reports.entry(file.to_string()).or_insert_with(|| {
            std::fs::read_to_string(&full)
                .ok()
                .and_then(|t| parse_json(&t).ok())
        });
        match report {
            None => regressions.push(format!(
                "REGRESSION {file}: report missing or unparsable at {full}"
            )),
            Some(report) => match run_check(report, file, check) {
                Ok(n) => passed += n,
                Err(mut lines) => regressions.append(&mut lines),
            },
        }
    }

    for line in &regressions {
        eprintln!("{line}");
    }
    println!(
        "bench_diff [{profile}]: {passed} metric checks passed, {} regressed",
        regressions.len()
    );
    i32::from(!regressions.is_empty())
}

fn run_verify_trace(path: &str, required: &[String], min_depth: usize) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_diff: cannot read trace {path}: {e}");
            return 2;
        }
    };
    let trace = match parse_json(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_diff: trace {path} is not valid JSON: {e:?}");
            return 1;
        }
    };
    let Some(events) = trace.get("traceEvents").and_then(JsonValue::as_array) else {
        eprintln!("bench_diff: {path} has no traceEvents array");
        return 1;
    };

    // Complete ("X") events carry one span each: name + id + parent id.
    let mut names: Vec<String> = Vec::new();
    let mut parent_of: HashMap<String, String> = HashMap::new();
    for ev in events {
        if ev.get("ph").and_then(JsonValue::as_str) != Some("X") {
            continue;
        }
        let name = ev.get("name").and_then(JsonValue::as_str).unwrap_or("");
        names.push(name.to_string());
        let args = ev.get("args");
        let id = args
            .and_then(|a| a.get("span_id"))
            .and_then(JsonValue::as_str)
            .unwrap_or("");
        let parent = args
            .and_then(|a| a.get("parent_id"))
            .and_then(JsonValue::as_str)
            .unwrap_or("");
        if !id.is_empty() {
            parent_of.insert(id.to_string(), parent.to_string());
        }
    }

    let mut missing = 0usize;
    for want in required {
        if !names.iter().any(|n| n == want) {
            eprintln!("bench_diff: trace is missing required span `{want}`");
            missing += 1;
        }
    }
    let mut failures = missing;

    // Depth of the deepest parent chain (roots have an empty parent id).
    let depth_of = |id: &str| -> usize {
        let mut id = id.to_string();
        let mut depth = 0;
        while !id.is_empty() && depth <= parent_of.len() {
            depth += 1;
            id = parent_of.get(&id).cloned().unwrap_or_default();
        }
        depth
    };
    let max_depth = parent_of.keys().map(|id| depth_of(id)).max().unwrap_or(0);
    if max_depth < min_depth {
        eprintln!("bench_diff: trace span tree depth {max_depth} < required {min_depth}");
        failures += 1;
    }

    println!(
        "bench_diff [trace]: {} spans, depth {max_depth}, {}/{} required spans present",
        names.len(),
        required.len() - missing,
        required.len()
    );
    i32::from(failures > 0)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut spec = "BENCH_BASELINES.json".to_string();
    let mut profile: Option<String> = None;
    let mut dir = ".".to_string();
    let mut verify_trace: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut min_depth = 0usize;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--spec" => {
                spec = argv.get(i + 1).cloned().unwrap_or(spec);
                i += 2;
            }
            "--profile" => {
                profile = argv.get(i + 1).cloned();
                i += 2;
            }
            "--dir" => {
                dir = argv.get(i + 1).cloned().unwrap_or(dir);
                i += 2;
            }
            "--verify-trace" => {
                verify_trace = argv.get(i + 1).cloned();
                i += 2;
            }
            "--require-span" => {
                required.extend(argv.get(i + 1).cloned());
                i += 2;
            }
            "--min-depth" => {
                min_depth = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(0);
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                exit(2);
            }
        }
    }

    let code = match (&verify_trace, &profile) {
        (Some(path), _) => run_verify_trace(path, &required, min_depth),
        (None, Some(profile)) => run_profile(&spec, profile, &dir),
        (None, None) => {
            eprintln!("usage: bench_diff --profile <name> [--spec f] [--dir d]");
            eprintln!("       bench_diff --verify-trace <f> [--require-span n]... [--min-depth k]");
            2
        }
    };
    exit(code);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> JsonValue {
        parse_json(
            r#"{
                "speedup": 3.5,
                "runs": [
                    {"ok": true, "ms": 10.0},
                    {"ms": 12.0},
                    {"ok": true, "ms": 11.0}
                ],
                "noise": {"waived": true}
            }"#,
        )
        .expect("test report parses")
    }

    fn check(json: &str) -> JsonValue {
        parse_json(json).expect("test check parses")
    }

    #[test]
    fn resolve_reports_full_and_partial_dead_ends() {
        let r = report();
        // Typo'd leaf: dies at the first segment, matches nothing.
        let miss = resolve(&r, "speedpu");
        assert!(miss.matches.is_empty());
        assert_eq!(miss.dead_ends, vec!["speedpu".to_string()]);
        // Partial fan-out: runs[1] lacks `ok`, the others match. This is
        // the hole the gate used to fall through silently.
        let partial = resolve(&r, "runs.*.ok");
        assert_eq!(partial.matches.len(), 2);
        assert_eq!(partial.dead_ends, vec!["runs.1.ok".to_string()]);
        // Fully-present leaf resolves cleanly.
        let full = resolve(&r, "runs.*.ms");
        assert_eq!(full.matches.len(), 3);
        assert!(full.dead_ends.is_empty());
        // `*` over a non-array is a dead end, not an empty success.
        let scalar = resolve(&r, "speedup.*");
        assert!(scalar.matches.is_empty());
        assert_eq!(scalar.dead_ends, vec!["speedup.*".to_string()]);
        // Out-of-range numeric index is a dead end.
        let oob = resolve(&r, "runs.7.ms");
        assert!(oob.matches.is_empty());
        assert_eq!(oob.dead_ends, vec!["runs.7".to_string()]);
    }

    #[test]
    fn run_check_errors_on_typo_path() {
        let r = report();
        let c = check(r#"{"file": "B.json", "path": "speedpu", "kind": "min", "limit": 2.0}"#);
        let err = run_check(&r, "B.json", &c).expect_err("typo'd path must fail the gate");
        assert!(err[0].contains("matches nothing at `speedpu`"), "{err:?}");
    }

    #[test]
    fn run_check_errors_on_partial_wildcard_fanout() {
        let r = report();
        let c = check(r#"{"file": "B.json", "path": "runs.*.ok", "kind": "true"}"#);
        let err = run_check(&r, "B.json", &c).expect_err("partial fan-out must fail the gate");
        assert!(err[0].contains("matches nothing at `runs.1.ok`"), "{err:?}");
    }

    #[test]
    fn run_check_passes_fully_resolved_paths() {
        let r = report();
        let c = check(r#"{"file": "B.json", "path": "runs.*.ms", "kind": "max", "limit": 20.0}"#);
        assert_eq!(run_check(&r, "B.json", &c).expect("all present"), 3);
        let c = check(r#"{"file": "B.json", "path": "speedup", "kind": "min", "limit": 2.0}"#);
        assert_eq!(run_check(&r, "B.json", &c).expect("scalar present"), 1);
    }

    #[test]
    fn unless_with_dead_end_does_not_waive() {
        let r = report();
        // Over-limit metric, waiver path typo'd: must regress, not waive.
        let c = check(
            r#"{"file": "B.json", "path": "speedup", "kind": "max", "limit": 1.0,
                "unless": "noise.wavied"}"#,
        );
        assert!(run_check(&r, "B.json", &c).is_err());
        // Same check with the real waiver path is waived.
        let c = check(
            r#"{"file": "B.json", "path": "speedup", "kind": "max", "limit": 1.0,
                "unless": "noise.waived"}"#,
        );
        assert!(run_check(&r, "B.json", &c).is_ok());
    }
}
