//! Incremental-vs-rebuild benchmark for the `FacetIndex` append path.
//!
//! ```text
//! incremental [--scale <f>] [--batches <n>] [--out <path>]
//! ```
//!
//! Feeds the SNYT recipe to the index in `--batches` slices and, after
//! each slice, also rebuilds a fresh index over the whole prefix — the
//! strategy a batch-only pipeline is forced into on a growing archive.
//! Writes the report as JSON (default `BENCH_2.json` at the repo root)
//! and prints a summary table.

use facet_bench::run_incremental_bench;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.2f64;
    let mut batches = 5usize;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                scale = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(0.2);
                i += 2;
            }
            "--batches" => {
                batches = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(5);
                i += 2;
            }
            "--out" => {
                out = argv.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        // Default to the repo root regardless of invocation cwd.
        format!("{}/../../BENCH_2.json", env!("CARGO_MANIFEST_DIR"))
    });

    let report = run_incremental_bench(scale, batches);
    println!(
        "incremental-vs-rebuild ({}, {} docs, {} batches)",
        report.dataset, report.total_docs, report.n_batches
    );
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>10} {:>10}",
        "batch", "docs", "append ms", "rebuild ms", "appd qrys", "rbld qrys"
    );
    for b in &report.batches {
        println!(
            "{:>6} {:>6} {:>12.1} {:>12.1} {:>10} {:>10}",
            b.batch,
            b.docs,
            b.append_ms,
            b.rebuild_ms,
            b.append_resource_queries,
            b.rebuild_resource_queries
        );
    }
    println!(
        "total: append {:.1} ms vs rebuild {:.1} ms — {:.2}x speedup, {} vs {} resource queries",
        report.append_total_ms,
        report.rebuild_total_ms,
        report.speedup,
        report.append_resource_queries,
        report.rebuild_resource_queries
    );
    println!(
        "interner: {} symbols, {} hits / {} misses ({:.1}% hit rate); \
         pre-interning totals: append {:.1} ms, rebuild {:.1} ms",
        report.intern.len,
        report.intern.hits,
        report.intern.misses,
        report.intern.hit_rate * 100.0,
        report.before_interning.append_total_ms,
        report.before_interning.rebuild_total_ms
    );

    let json = facet_jsonio::to_json_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write benchmark report");
    println!("wrote {out}");
}
