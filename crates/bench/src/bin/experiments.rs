//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! experiments <command> [--scale <f>] [--top-k <n>] [--json] [--obs <path>]
//!
//! Commands:
//!   table1        Pilot-study facets (Table I) + the 65% missing-term stat
//!   figure4       Most frequent annotator facet terms
//!   figure5       Plain-subsumption baseline terms
//!   table2        Recall grid, SNYT      table5   Precision grid, SNYT
//!   table3        Recall grid, SNB       table6   Precision grid, SNB
//!   table4        Recall grid, MNYT      table7   Precision grid, MNYT
//!   dimensions    Recall per facet dimension + candidate composition
//!   ablation      Selection statistic + hierarchy construction ablation
//!   baselines     Related-work baselines vs the paper's pipeline
//!   sensitivity   Facet-term discovery vs sample size
//!   efficiency    Component throughput (Section V-D)
//!   userstudy     Simulated 5×5 user study (Section V-E)
//!   all           Everything above
//! ```
//!
//! `--scale` shrinks document counts (1.0 = paper scale; default 1.0).
//! `--obs <path>` enables the observability recorder: a JSON metrics
//! report (stage spans, per-resource query counts and latency
//! histograms, cache hit/miss) is written to `<path>` and a per-stage
//! time table is printed to stderr.

use facet_bench::drivers;
use facet_corpus::RecipeKind;
use facet_obs::Recorder;

struct Args {
    command: String,
    scale: f64,
    top_k: usize,
    json: bool,
    obs: Option<String>,
    recorder: Recorder,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut command = String::from("all");
    let mut scale = 1.0f64;
    let mut top_k = 2000usize;
    let mut json = false;
    let mut obs: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--scale" => {
                scale = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
                i += 2;
            }
            "--top-k" => {
                top_k = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(2000);
                i += 2;
            }
            "--obs" => {
                match argv.get(i + 1) {
                    Some(path) => obs = Some(path.clone()),
                    None => {
                        eprintln!("--obs requires a file path");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            c if !c.starts_with("--") => {
                command = c.to_string();
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let recorder = if obs.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    Args {
        command,
        scale,
        top_k,
        json,
        obs,
        recorder,
    }
}

/// Write the metrics report to `--obs <path>` (JSON) and print the
/// per-stage time table to stderr. No-op when `--obs` was not given.
fn dump_obs(args: &Args) {
    let Some(path) = &args.obs else { return };
    let report = args.recorder.snapshot();
    let json = facet_jsonio::to_json_string_pretty(&report).expect("metrics serialize");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("failed to write metrics to {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("\n-- stage times ({path}) --\n{}", report.stage_table());
}

fn show(table: &facet_eval::Table, args: &Args) {
    if args.json {
        println!(
            "{}",
            facet_jsonio::to_json_string_pretty(table).expect("table serializes")
        );
    } else {
        println!("{}", table.render());
    }
}

fn recall_precision(kind: RecipeKind, which: &str, args: &Args) {
    let (recall, precision, gold_n, _bundle) =
        drivers::run_dataset_tables_recorded(kind, args.scale, args.top_k, &args.recorder);
    println!(
        "Gold standard: {gold_n} distinct facet terms ({}).",
        kind.name()
    );
    match which {
        "recall" => show(&recall, args),
        "precision" => show(&precision, args),
        _ => {
            show(&recall, args);
            show(&precision, args);
        }
    }
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "table1" => {
            let (t, missing) = drivers::run_pilot(args.scale);
            println!("{}", t.render());
            println!(
                "Facet terms absent from the story text: {:.0}% (paper: 65%)",
                missing * 100.0
            );
        }
        "pilot-missing" => {
            let (_t, missing) = drivers::run_pilot(args.scale);
            println!(
                "Facet terms absent from the story text: {:.0}% (paper: 65%)",
                missing * 100.0
            );
        }
        "figure4" => {
            println!("Most frequent annotator-identified facet terms (Figure 4):");
            for (term, count) in drivers::run_figure4(args.scale, 60) {
                println!("  {term}  ({count} stories)");
            }
        }
        "figure5" => {
            println!("Plain-subsumption baseline terms (Figure 5):");
            println!("  {}", drivers::run_figure5(args.scale, 25).join(", "));
        }
        "table2" => recall_precision(RecipeKind::Snyt, "recall", &args),
        "table3" => recall_precision(RecipeKind::Snb, "recall", &args),
        "table4" => recall_precision(RecipeKind::Mnyt, "recall", &args),
        "table5" => recall_precision(RecipeKind::Snyt, "precision", &args),
        "table6" => recall_precision(RecipeKind::Snb, "precision", &args),
        "table7" => recall_precision(RecipeKind::Mnyt, "precision", &args),
        "snyt" => recall_precision(RecipeKind::Snyt, "both", &args),
        "snb" => recall_precision(RecipeKind::Snb, "both", &args),
        "mnyt" => recall_precision(RecipeKind::Mnyt, "both", &args),
        "dimensions" => {
            let (dims, comp) = drivers::run_dimensions(RecipeKind::Snyt, args.scale, args.top_k);
            show(&dims, &args);
            show(&comp, &args);
        }
        "ablation" => {
            println!("{}", drivers::run_ablation(args.scale, args.top_k).render());
        }
        "baselines" => {
            println!(
                "{}",
                drivers::run_baselines(args.scale, args.top_k).render()
            );
        }
        "sensitivity" => {
            println!(
                "{}",
                drivers::run_sensitivity(RecipeKind::Snyt, args.scale).render()
            );
        }
        "efficiency" => {
            println!(
                "{}",
                drivers::run_efficiency(RecipeKind::Snyt, args.scale, 200).render()
            );
        }
        "userstudy" => {
            println!(
                "{}",
                drivers::run_user_study_experiment(args.scale).render()
            );
        }
        "all" => {
            let (t, missing) = drivers::run_pilot(args.scale);
            println!("{}", t.render());
            println!(
                "Facet terms absent from the story text: {:.0}% (paper: 65%)\n",
                missing * 100.0
            );
            println!("Most frequent annotator facet terms (Figure 4):");
            for (term, count) in drivers::run_figure4(args.scale, 40) {
                println!("  {term}  ({count})");
            }
            println!("\nPlain-subsumption baseline terms (Figure 5):");
            println!("  {}\n", drivers::run_figure5(args.scale, 25).join(", "));
            for kind in RecipeKind::ALL {
                recall_precision(kind, "both", &args);
            }
            println!("{}", drivers::run_ablation(args.scale, args.top_k).render());
            println!(
                "{}",
                drivers::run_baselines(args.scale, args.top_k).render()
            );
            let (dims, comp) = drivers::run_dimensions(RecipeKind::Snyt, args.scale, args.top_k);
            println!("{}", dims.render());
            println!("{}", comp.render());
            println!(
                "{}",
                drivers::run_sensitivity(RecipeKind::Snyt, args.scale).render()
            );
            println!(
                "{}",
                drivers::run_efficiency(RecipeKind::Snyt, args.scale, 200).render()
            );
            println!(
                "{}",
                drivers::run_user_study_experiment(args.scale).render()
            );
        }
        other => {
            eprintln!("unknown command {other}; see the doc comment for usage");
            std::process::exit(2);
        }
    }
    dump_obs(&args);
}
