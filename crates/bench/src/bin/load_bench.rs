//! Serving-tier load benchmark for `FacetServer` (ISSUE 8 tentpole).
//!
//! ```text
//! load_bench [--scale <f>] [--shards <n>] [--readers <n>] [--queries <n>]
//!            [--appends <n>] [--seed <n>] [--out <path>] [--digest <path>]
//!            [--smoke]
//! ```
//!
//! Drives a seeded Zipfian query mix against a `FacetServer` over the
//! SNYT recipe: a quiescent cached-vs-uncached baseline, then `--readers`
//! threads replaying the mix while the writer appends `--appends` batches
//! mid-run, then a post-append deterministic sweep. Writes the report as
//! JSON (default `BENCH_5.json` at the repo root) and prints a summary.
//!
//! `--digest <path>` additionally writes a timing-free sidecar (digest,
//! pool size, doc counts, generation, mismatch count) — two runs of the
//! same configuration must produce byte-identical sidecars, which
//! `scripts/check.sh --serve-smoke` verifies with `cmp`.
//!
//! `--smoke` asserts the report invariants (zero identity mismatches,
//! ≥2x cached speedup, hit-rate arithmetic) and exits non-zero on
//! violation — wired into `scripts/check.sh --tier1` via `--serve-smoke`.

use facet_bench::{run_load_bench, LoadBenchConfig};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut config = LoadBenchConfig::default();
    let mut out: Option<String> = None;
    let mut digest_out: Option<String> = None;
    let mut smoke = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                config.scale = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(0.2);
                i += 2;
            }
            "--shards" => {
                config.shards = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(4);
                i += 2;
            }
            "--readers" => {
                config.readers = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(4);
                i += 2;
            }
            "--queries" => {
                config.queries_per_reader =
                    argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(300);
                i += 2;
            }
            "--appends" => {
                config.mid_run_appends = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(3);
                i += 2;
            }
            "--seed" => {
                config.seed = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(42);
                i += 2;
            }
            "--out" => {
                out = argv.get(i + 1).cloned();
                i += 2;
            }
            "--digest" => {
                digest_out = argv.get(i + 1).cloned();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        // Default to the repo root regardless of invocation cwd.
        format!("{}/../../BENCH_5.json", env!("CARGO_MANIFEST_DIR"))
    });

    let report = run_load_bench(&config);
    println!(
        "serving-tier load bench ({}, {} -> {} docs, {} shards, {} readers x {} queries, \
         {} mid-run appends, {} host cpus)",
        report.dataset,
        report.initial_docs,
        report.total_docs,
        report.config.shards,
        report.config.readers,
        report.config.queries_per_reader,
        report.config.mid_run_appends,
        report.host_cpus
    );
    println!(
        "pool {} labels, generation {}, digest {}",
        report.query_pool, report.final_generation, report.digest
    );
    println!(
        "contended browse: p50 {:.1} us, p99 {:.1} us; cache {} hits / {} misses \
         ({:.1}% hit rate, {} invalidated)",
        report.browse_p50_us,
        report.browse_p99_us,
        report.cache_hits,
        report.cache_misses,
        report.cache_hit_rate * 100.0,
        report.cache_invalidations
    );
    println!(
        "quiescent: cached hit p50 {:.2} us vs uncached p50 {:.1} us => {:.1}x speedup",
        report.cached_hit_p50_us, report.uncached_p50_us, report.cached_vs_uncached_speedup
    );
    println!(
        "identity: {} checked byte-identical, {} skipped (generation race), {} mismatches",
        report.identity_checks, report.identity_skipped_generation_race, report.identity_mismatches
    );

    // Byte-identity is unconditional: a serving tier that answers from
    // the cache differently than from re-selection is broken no matter
    // what the timings say.
    assert_eq!(
        report.identity_mismatches, 0,
        "cached browse diverged from uncached re-selection"
    );
    if smoke {
        assert!(
            report.cached_vs_uncached_speedup >= 2.0,
            "cached-hit browse must be >=2x faster than uncached re-selection, got {:.2}x",
            report.cached_vs_uncached_speedup
        );
        assert!(
            report.identity_checks > 0,
            "the contended phase performed no same-generation identity checks"
        );
        assert!(
            report.final_generation > 0 || report.config.mid_run_appends == 0,
            "mid-run appends must bump the published generation"
        );
        let total = report.cache_hits + report.cache_misses;
        assert_eq!(
            total,
            (report.config.readers * report.config.queries_per_reader) as u64,
            "every contended browse must count as exactly one hit or miss"
        );
        let rate = report.cache_hits as f64 / (total as f64).max(1.0);
        assert!(
            (report.cache_hit_rate - rate).abs() < 1e-9,
            "hit rate must be hits / (hits + misses)"
        );
        println!("smoke assertions passed");
    }

    if let Some(path) = digest_out {
        // Timing-free determinism sidecar: identical across two runs of
        // the same configuration.
        let sidecar = format!(
            "digest={}\nquery_pool={}\ninitial_docs={}\ntotal_docs={}\n\
             final_generation={}\nidentity_mismatches={}\n",
            report.digest,
            report.query_pool,
            report.initial_docs,
            report.total_docs,
            report.final_generation,
            report.identity_mismatches
        );
        std::fs::write(&path, sidecar).expect("write digest sidecar");
        println!("wrote {path}");
    }

    let json = facet_jsonio::to_json_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write benchmark report");
    println!("wrote {out}");
}
