//! Resilience-layer benchmark for the fault-tolerant resource stack.
//!
//! ```text
//! resilience_bench [--scale <f>] [--iters <n>] [--seeds <a,b,c>] [--out <path>] [--smoke]
//! ```
//!
//! Measures (1) the fault-free overhead of wrapping every context
//! resource in a `ResilientResource` (retries + circuit breaker, never
//! triggered) against raw resources, and (2) a degraded-build + `repair()`
//! cycle per fault seed, verifying the repaired snapshot converges to the
//! fault-free build. Writes the report as JSON (default `BENCH_4.json` at
//! the repo root) and prints a summary table.
//!
//! `--smoke` asserts the report invariants — the fault-free overhead
//! acceptance bar (≤5%, or within the reported noise band),
//! string-identity of the policy-wrapped build, and convergence of every
//! repair — and exits non-zero on violation. Wired into
//! `scripts/check.sh --bench-smoke`.

use facet_bench::run_resilience_bench;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.2f64;
    let mut iters = 3usize;
    let mut seeds: Vec<u64> = vec![0xBAD5EED, 0x5EED2, 42];
    let mut out: Option<String> = None;
    let mut smoke = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                scale = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(0.2);
                i += 2;
            }
            "--iters" => {
                iters = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(3);
                i += 2;
            }
            "--seeds" => {
                seeds = argv
                    .get(i + 1)
                    .map(|s| s.split(',').filter_map(|p| p.trim().parse().ok()).collect())
                    .filter(|v: &Vec<u64>| !v.is_empty())
                    .unwrap_or(seeds);
                i += 2;
            }
            "--out" => {
                out = argv.get(i + 1).cloned();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        // Default to the repo root regardless of invocation cwd.
        format!("{}/../../BENCH_4.json", env!("CARGO_MANIFEST_DIR"))
    });

    let report = run_resilience_bench(scale, iters, &seeds);
    println!(
        "resilience overhead ({}, {} docs, mean of {} iterations)",
        report.dataset, report.total_docs, report.iterations
    );
    println!(
        "fault-free build: raw {:.1}±{:.1} ms, resilient {:.1}±{:.1} ms \
         ({:+.2}% raw overhead, noise band ±{:.2}%{}, identical: {})",
        report.baseline_build_ms,
        report.baseline_stddev_ms,
        report.resilient_build_ms,
        report.resilient_stddev_ms,
        report.overhead_raw_pct,
        report.overhead_noise_pct,
        if report.overhead_within_noise {
            " — within noise"
        } else {
            ""
        },
        report.resilient_identical
    );
    println!(
        "interner: {} symbols, {} hits / {} misses ({:.1}% hit rate); \
         pre-interning means: raw {:.1} ms, resilient {:.1} ms",
        report.intern.len,
        report.intern.hits,
        report.intern.misses,
        report.intern.hit_rate * 100.0,
        report.before_interning.baseline_build_ms,
        report.before_interning.resilient_build_ms
    );
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "fault seed", "build ms", "degraded", "repair ms", "requeried", "docs", "converged"
    );
    for r in &report.fault_runs {
        println!(
            "{:>#12x} {:>10.1} {:>10} {:>10.1} {:>10} {:>10} {:>10}",
            r.fault_seed,
            r.build_ms,
            r.degraded_terms,
            r.repair_ms,
            r.requeried_terms,
            r.changed_docs,
            r.converged
        );
    }

    if smoke {
        // The acceptance bar: resilience must be ~free when nothing
        // fails — under 5%, or indistinguishable from scheduler noise.
        assert!(
            report.overhead_pct <= 5.0 || report.overhead_within_noise,
            "fault-free resilience overhead {:.2}% exceeds the 5% bar \
             (noise band ±{:.2}%)",
            report.overhead_pct,
            report.overhead_noise_pct
        );
        assert!(
            report.resilient_identical,
            "the policy-wrapped fault-free build diverged from the raw build"
        );
        for r in &report.fault_runs {
            assert!(
                r.degraded_terms > 0,
                "seed {:#x} injected no degradation; the fault plan is inert",
                r.fault_seed
            );
            assert_eq!(
                r.requeried_terms, r.degraded_terms,
                "seed {:#x}: repair must re-query exactly the degraded terms",
                r.fault_seed
            );
            assert!(
                r.converged,
                "seed {:#x}: repaired snapshot did not converge to the fault-free build",
                r.fault_seed
            );
        }
        println!("smoke assertions passed");
    }

    let json = facet_jsonio::to_json_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write benchmark report");
    println!("wrote {out}");
}
