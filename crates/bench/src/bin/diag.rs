//! Diagnostic tool: inspect the substrates and the pipeline internals on
//! a dataset. Not part of the paper's experiments; useful when tuning.

use facet_bench::drivers::{dataset_gold, scaled_bundle};
use facet_corpus::RecipeKind;
use facet_knowledge::EntityKind;
use facet_resources::{
    ContextResource, GoogleResource, WikiGraphResource, WikiSynonymsResource,
    WordNetHypernymsResource,
};
use facet_wikipedia::{WikipediaGraph, WikipediaSynonyms};

fn main() {
    // Usage: diag [scale] [--obs <path>]
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut obs: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--obs" {
            obs = argv.get(i + 1).cloned();
            i += 2;
        } else {
            if let Ok(s) = argv[i].parse() {
                scale = s;
            }
            i += 1;
        }
    }
    let recorder = if obs.is_some() {
        facet_obs::Recorder::enabled()
    } else {
        facet_obs::Recorder::disabled()
    };
    let mut bundle = scaled_bundle(RecipeKind::Snyt, scale);
    let world = &bundle.world;

    let gold = dataset_gold(&bundle, 1000);
    let gold_terms: Vec<String> = gold
        .gold_terms(world)
        .into_iter()
        .map(str::to_string)
        .collect();
    println!("gold terms: {}", gold_terms.len());
    let mut by_root: std::collections::HashMap<&str, usize> = Default::default();
    for &(n, _) in &gold.term_counts {
        let root = world.ontology.root_of(n);
        *by_root
            .entry(world.ontology.node(root).term.as_str())
            .or_default() += 1;
    }
    println!("gold by dimension: {by_root:?}");
    println!("ontology size: {}", world.ontology.len());

    // Inspect resources on a popular person and a country.
    let person = world.entities_of_kind(EntityKind::Person).next().unwrap();
    let country = world
        .entities_of_kind(EntityKind::Location)
        .find(|e| world.ontology.node(e.self_facet.unwrap()).depth == 2)
        .unwrap();

    let graph = WikipediaGraph::new(&bundle.wiki.wiki, &bundle.wiki.redirects);
    let synonyms = WikipediaSynonyms::new(
        &bundle.wiki.wiki,
        &bundle.wiki.redirects,
        &bundle.wiki.anchors,
    );
    let google = GoogleResource::new(&bundle.web);
    let wn = WordNetHypernymsResource::new(&bundle.wordnet);
    let syn = WikiSynonymsResource::new(&synonyms);
    let gr = WikiGraphResource::new(&graph);

    for probe in [person.name.as_str(), country.name.as_str(), "ballot"] {
        println!("\n=== probe: {probe}");
        println!("  google: {:?}", google.context_terms(probe));
        println!("  wordnet: {:?}", wn.context_terms(probe));
        println!("  wiki-syn: {:?}", syn.context_terms(probe));
        let g: Vec<String> = gr.context_terms(probe).into_iter().take(15).collect();
        println!("  wiki-graph (top 15): {g:?}");
    }

    // Show a web search for the person.
    println!("\nweb search hits for {}:", person.name);
    for h in bundle.web.search(&person.name, 3) {
        println!(
            "  [{:.2}] {}",
            h.score,
            &h.snippet[..h.snippet.len().min(200)]
        );
    }

    // ---- per-cell analysis ---------------------------------------------
    use facet_core::PipelineOptions;
    use facet_eval::harness::{run_grid, GridOptions};
    let options = GridOptions {
        pipeline: PipelineOptions {
            top_k: 1500,
            ..Default::default()
        },
        build_hierarchies: true,
        subsumption_doc_cap: 3000,
        recorder: recorder.clone(),
    };
    let cells = run_grid(&mut bundle, &options);
    let gold_set: std::collections::HashSet<String> =
        gold_terms.iter().map(|s| s.to_string()).collect();
    for (res, ext) in [
        ("Google", "Wikipedia"),
        ("Wikipedia Graph", "Wikipedia"),
        ("Wikipedia Synonyms", "NE"),
        ("All", "All"),
    ] {
        let cell = cells
            .iter()
            .find(|c| c.resource == res && c.extractor == ext)
            .unwrap();
        let world = &bundle.world;
        let mut classes: std::collections::HashMap<&str, usize> = Default::default();
        let mut placement_wrong = 0usize;
        for c in &cell.candidates {
            let class = if world.ontology.find(&c.term).is_some() {
                "ontology"
            } else if world.find_entity(&c.term).is_some() {
                "entity"
            } else if world.concepts.iter().any(|k| k.noun == c.term) {
                "concept-noun"
            } else {
                "noise"
            };
            *classes.entry(class).or_default() += 1;
            let parent = cell
                .parents
                .iter()
                .find(|(t, _)| *t == c.term)
                .and_then(|(_, p)| p.clone());
            if let Some(p) = parent {
                let ok = match world.ontology.find(&c.term) {
                    Some(node) => world
                        .ontology
                        .find(&p)
                        .is_some_and(|pn| world.ontology.is_ancestor(pn, node)),
                    None => match world.find_entity(&c.term) {
                        Some(e) => world
                            .ontology
                            .find(&p)
                            .is_some_and(|pn| world.entity_facet_closure(e.id).contains(&pn)),
                        None => false,
                    },
                };
                if !ok {
                    placement_wrong += 1;
                }
            }
        }
        // Missed gold by dimension.
        let have: std::collections::HashSet<&str> =
            cell.candidates.iter().map(|c| c.term.as_str()).collect();
        let mut missed_by_root: std::collections::HashMap<String, usize> = Default::default();
        for g in &gold_set {
            if !have.contains(g.as_str()) {
                let node = world.ontology.find(g).unwrap();
                let root = world
                    .ontology
                    .node(world.ontology.root_of(node))
                    .term
                    .clone();
                *missed_by_root.entry(root).or_default() += 1;
            }
        }
        println!(
            "\ncell {res} × {ext}: {} candidates, classes {:?}, wrong placements {}",
            cell.candidates.len(),
            classes,
            placement_wrong
        );
        println!("  missed gold by dimension: {missed_by_root:?}");
        let sample_noise: Vec<&str> = cell
            .candidates
            .iter()
            .filter(|c| {
                world.ontology.find(&c.term).is_none()
                    && world.find_entity(&c.term).is_none()
                    && !world.concepts.iter().any(|k| k.noun == c.term)
            })
            .take(15)
            .map(|c| c.term.as_str())
            .collect();
        println!("  sample noise: {sample_noise:?}");
        let mut wrong_examples: Vec<(String, String)> = Vec::new();
        for c in &cell.candidates {
            if wrong_examples.len() >= 12 {
                break;
            }
            let Some(p) = cell
                .parents
                .iter()
                .find(|(t, _)| *t == c.term)
                .and_then(|(_, p)| p.clone())
            else {
                continue;
            };
            let ok = match world.ontology.find(&c.term) {
                Some(node) => world
                    .ontology
                    .find(&p)
                    .is_some_and(|pn| world.ontology.is_ancestor(pn, node)),
                None => match world.find_entity(&c.term) {
                    Some(e) => world
                        .ontology
                        .find(&p)
                        .is_some_and(|pn| world.entity_facet_closure(e.id).contains(&pn)),
                    None => false,
                },
            };
            if !ok
                && (world.find_entity(&c.term).is_some() || world.ontology.find(&c.term).is_some())
            {
                wrong_examples.push((c.term.clone(), p));
            }
        }
        println!("  wrong placement examples: {wrong_examples:?}");
    }

    // ---- subsumption sanity probe ----------------------------------------
    {
        use facet_core::{FacetPipeline, PipelineOptions};
        use facet_resources::{CachedResource, ContextResource, WikiGraphResource};
        use facet_termx::{TermExtractor, WikipediaTitleExtractor};
        use facet_wikipedia::{TitleIndex, WikipediaGraph};
        let world = &bundle.world;
        let title_index = TitleIndex::build(&bundle.wiki.wiki, &bundle.wiki.redirects);
        let wiki_x = WikipediaTitleExtractor::new(&bundle.wiki.wiki, title_index);
        let graph = WikipediaGraph::new(&bundle.wiki.wiki, &bundle.wiki.redirects);
        let graph_res = CachedResource::new(WikiGraphResource::new(&graph));
        let extractors: Vec<&dyn TermExtractor> = vec![&wiki_x];
        let resources: Vec<&dyn ContextResource> = vec![&graph_res];
        let pipeline = FacetPipeline::new(
            extractors,
            resources,
            PipelineOptions {
                top_k: 1500,
                ..Default::default()
            },
        );
        let out = pipeline.run(&bundle.corpus.db, &mut bundle.vocab);
        // Which important term drags "railways" into every document?
        let mut culprits: std::collections::HashMap<String, usize> = Default::default();
        for terms in out.important_terms.iter().take(200) {
            for t in terms {
                if graph_res.context_terms(t).iter().any(|c| c == "railways") {
                    *culprits.entry(t.clone()).or_default() += 1;
                }
            }
        }
        println!("railways culprits (first 200 docs): {culprits:?}");
        println!("sample I(d) of doc 0: {:?}", &out.important_terms[0]);
        let forest = pipeline.build_hierarchies(&out, &bundle.vocab);
        // Verify the subsumption invariant on actual data for a few edges.
        for (parent_label, child_label) in forest.edges().into_iter().take(400) {
            let p = bundle.vocab.get(&parent_label).unwrap();
            let c = bundle.vocab.get(&child_label).unwrap();
            let mut df_p = 0u64;
            let mut df_c_ = 0u64;
            let mut co = 0u64;
            for terms in &out.contextualized.doc_terms {
                let has_p = terms.binary_search(&p).is_ok();
                let has_c = terms.binary_search(&c).is_ok();
                df_p += has_p as u64;
                df_c_ += has_c as u64;
                co += (has_p && has_c) as u64;
            }
            let pxy = co as f64 / df_c_.max(1) as f64;
            if parent_label.contains("klikstox")
                || parent_label.contains("proia")
                || child_label == "finance"
                || child_label == "trade"
            {
                println!(
                    "edge {parent_label} <- {child_label}: df_p={df_p} df_c={df_c_} co={co} P(p|c)={pxy:.2}"
                );
            }
        }
        let _ = world;
    }

    // ---- WikiSyn shift probe ---------------------------------------------
    {
        use facet_ner::NerTagger;
        use facet_resources::{expand_database, ExpansionOptions, WikiSynonymsResource};
        use facet_stats::rank_bins;
        use facet_termx::{NamedEntityExtractor, TermExtractor};
        use facet_wikipedia::WikipediaSynonyms;
        let world = &bundle.world;
        let tagger = NerTagger::from_world(world);
        let ne = NamedEntityExtractor::new(tagger);
        let important: Vec<Vec<String>> = bundle
            .corpus
            .db
            .docs()
            .iter()
            .map(|d| ne.extract(&d.full_text()))
            .collect();
        let synonyms = WikipediaSynonyms::new(
            &bundle.wiki.wiki,
            &bundle.wiki.redirects,
            &bundle.wiki.anchors,
        );
        let syn_res = WikiSynonymsResource::new(&synonyms);
        let c = expand_database(
            &bundle.corpus.db,
            &important,
            &[&syn_res],
            &mut bundle.vocab,
            &ExpansionOptions::default(),
        );
        let df = bundle.corpus.db.df_table_resized(bundle.vocab.len());
        let bins_d = rank_bins(&df);
        let bins_c = rank_bins(c.df_table());
        println!(
            "
WikiSyn shift probe (gold country terms):"
        );
        let mut shown = 0;
        for e in world.entities_of_kind(facet_knowledge::EntityKind::Location) {
            let node = e.self_facet.unwrap();
            if world.ontology.node(node).depth != 2 || e.variants.len() < 2 {
                continue;
            }
            let term = e.name.to_lowercase();
            let Some(id) = bundle.vocab.get(&term) else {
                continue;
            };
            println!(
                "  {term}: df={} df_c={} bin_d={} bin_c={} variants={:?}",
                df[id.index()],
                c.df_c(id),
                bins_d[id.index()],
                bins_c[id.index()],
                e.variants,
            );
            shown += 1;
            if shown >= 8 {
                break;
            }
        }
    }

    // ---- observability dump ----------------------------------------------
    if let Some(path) = obs {
        let report = recorder.snapshot();
        let json = facet_jsonio::to_json_string_pretty(&report).expect("metrics serialize");
        std::fs::write(&path, json).expect("write metrics report");
        eprintln!("\n-- stage times ({path}) --\n{}", report.stage_table());
    }
}
