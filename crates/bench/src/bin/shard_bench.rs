//! Sharded-vs-unsharded append benchmark for `ShardedFacetIndex`.
//!
//! ```text
//! shard_bench [--scale <f>] [--batches <n>] [--shards <a,b,c>] [--out <path>] [--smoke]
//! ```
//!
//! Feeds the SNYT recipe to an unsharded `FacetIndex` and to
//! `ShardedFacetIndex` at each requested shard count, in the same
//! `--batches` slices, and verifies every sharded run is
//! string-identical to the unsharded build. Writes the report as JSON
//! (default `BENCH_3.json` at the repo root) and prints a summary table.
//!
//! `--smoke` asserts report invariants (equivalence, rate math) and
//! exits non-zero on violation — wired into `scripts/check.sh
//! --bench-smoke` so regressions in the benchmark arithmetic itself
//! fail fast.

use facet_bench::run_shard_bench;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.2f64;
    let mut batches = 5usize;
    let mut shards: Vec<usize> = vec![1, 2, 4, 8];
    let mut out: Option<String> = None;
    let mut smoke = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                scale = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(0.2);
                i += 2;
            }
            "--batches" => {
                batches = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(5);
                i += 2;
            }
            "--shards" => {
                shards = argv
                    .get(i + 1)
                    .map(|s| s.split(',').filter_map(|p| p.trim().parse().ok()).collect())
                    .filter(|v: &Vec<usize>| !v.is_empty())
                    .unwrap_or(shards);
                i += 2;
            }
            "--out" => {
                out = argv.get(i + 1).cloned();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        // Default to the repo root regardless of invocation cwd.
        format!("{}/../../BENCH_3.json", env!("CARGO_MANIFEST_DIR"))
    });

    let report = run_shard_bench(scale, batches, &shards);
    println!(
        "sharded-vs-unsharded ({}, {} docs, {} batches, {} host cpus)",
        report.dataset, report.total_docs, report.n_batches, report.host_cpus
    );
    println!(
        "unsharded FacetIndex: {:.1} ms ({} symbols interned; pre-interning: {:.1} ms)",
        report.unsharded_total_ms,
        report.unsharded_intern.len,
        report.before_interning.unsharded_total_ms
    );
    println!(
        "{:>7} {:>12} {:>10} {:>9} {:>10} {:>10}",
        "shards", "append ms", "docs/s", "speedup", "identical", "queries"
    );
    for r in &report.runs {
        println!(
            "{:>7} {:>12.1} {:>10.0} {:>8.2}x {:>10} {:>10}",
            r.shards,
            r.append_total_ms,
            r.append_docs_per_sec,
            r.speedup_vs_unsharded,
            r.identical_to_batch,
            r.resource_queries
        );
    }

    if smoke {
        // Correctness: every shard count must reproduce the batch build.
        for r in &report.runs {
            assert!(
                r.identical_to_batch,
                "{} shards diverged from the unsharded build",
                r.shards
            );
        }
        // Rate math: throughput must be net-new docs over wall time, and
        // speedup must be the wall-clock ratio — the exact invariants the
        // incremental bench once violated.
        for r in &report.runs {
            let rate = report.total_docs as f64 / (r.append_total_ms / 1e3);
            assert!(
                (r.append_docs_per_sec - rate).abs() / rate < 1e-9,
                "{} shards: docs/s must divide net-new docs by wall time",
                r.shards
            );
            let speedup = report.unsharded_total_ms / r.append_total_ms;
            assert!(
                (r.speedup_vs_unsharded - speedup).abs() / speedup < 1e-9,
                "{} shards: speedup must be the wall-clock ratio",
                r.shards
            );
        }
        // The shared cache keeps resource work independent of sharding.
        let queries: Vec<u64> = report.runs.iter().map(|r| r.resource_queries).collect();
        assert!(
            queries.windows(2).all(|w| w[0] == w[1]),
            "resource queries must not depend on the shard count: {queries:?}"
        );
        // The merged vocabulary is content-determined: identical corpus
        // and context terms must intern to the same symbol count no
        // matter how the documents were partitioned.
        let lens: Vec<usize> = report.runs.iter().map(|r| r.intern.len).collect();
        assert!(
            lens.windows(2).all(|w| w[0] == w[1]),
            "merged vocabulary size must not depend on the shard count: {lens:?}"
        );
        println!("smoke assertions passed");
    }

    let json = facet_jsonio::to_json_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write benchmark report");
    println!("wrote {out}");
}
