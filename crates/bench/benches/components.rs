//! Component microbenchmarks (paper Section V-D): per-stage throughput of
//! the pipeline — term extraction per extractor, document expansion per
//! resource, facet-term selection, and hierarchy construction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use facet_bench::drivers::scaled_bundle;
use facet_core::{
    build_subsumption_forest, select_facet_terms, SelectionInputs, SelectionStatistic,
    SubsumptionParams,
};
use facet_corpus::RecipeKind;
use facet_ner::NerTagger;
use facet_resources::{
    expand_database, ContextResource, ExpansionOptions, GoogleResource, WikiGraphResource,
    WikiSynonymsResource, WordNetHypernymsResource,
};
use facet_termx::{
    NamedEntityExtractor, TermExtractor, WikipediaTitleExtractor, YahooTermExtractor,
};
use facet_wikipedia::{TitleIndex, WikipediaGraph, WikipediaSynonyms};

fn bench_extractors(c: &mut Criterion) {
    let bundle = scaled_bundle(RecipeKind::Snyt, 0.2);
    let docs: Vec<String> = bundle
        .corpus
        .db
        .docs()
        .iter()
        .take(50)
        .map(|d| d.full_text())
        .collect();

    let tagger = NerTagger::from_world(&bundle.world);
    let ne = NamedEntityExtractor::new(tagger);
    let yahoo = YahooTermExtractor::fit(&bundle.corpus.db, &bundle.vocab);
    let title_index = TitleIndex::build(&bundle.wiki.wiki, &bundle.wiki.redirects);
    let wiki_x = WikipediaTitleExtractor::new(&bundle.wiki.wiki, title_index);

    let mut group = c.benchmark_group("extract_50_docs");
    let extractors: [(&str, &dyn TermExtractor); 3] =
        [("ne", &ne), ("yahoo", &yahoo), ("wikipedia", &wiki_x)];
    for (name, e) in extractors {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut n = 0;
                for d in &docs {
                    n += e.extract(d).len();
                }
                n
            })
        });
    }
    group.finish();
}

fn bench_resources(c: &mut Criterion) {
    let mut bundle = scaled_bundle(RecipeKind::Snyt, 0.2);
    let tagger = NerTagger::from_world(&bundle.world);
    let ne = NamedEntityExtractor::new(tagger);
    let important: Vec<Vec<String>> = bundle
        .corpus
        .db
        .docs()
        .iter()
        .map(|d| ne.extract(&d.full_text()))
        .collect();

    let graph = WikipediaGraph::new(&bundle.wiki.wiki, &bundle.wiki.redirects);
    let synonyms = WikipediaSynonyms::new(
        &bundle.wiki.wiki,
        &bundle.wiki.redirects,
        &bundle.wiki.anchors,
    );
    let google = GoogleResource::new(&bundle.web);
    let wn = WordNetHypernymsResource::new(&bundle.wordnet);
    let syn = WikiSynonymsResource::new(&synonyms);
    let graph_res = WikiGraphResource::new(&graph);

    let mut group = c.benchmark_group("expand_corpus");
    group.sample_size(10);
    let resources: [(&str, &dyn ContextResource); 4] = [
        ("google", &google),
        ("wordnet", &wn),
        ("wiki_synonyms", &syn),
        ("wiki_graph", &graph_res),
    ];
    for (name, r) in resources {
        group.bench_function(name, |b| {
            b.iter_batched(
                || bundle.vocab.clone(),
                |mut vocab| {
                    expand_database(
                        &bundle.corpus.db,
                        &important,
                        &[r],
                        &mut vocab,
                        &ExpansionOptions { threads: 1 },
                    )
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    // Selection and hierarchy construction use the graph expansion.
    let contextualized = expand_database(
        &bundle.corpus.db,
        &important,
        &[&graph_res],
        &mut bundle.vocab,
        &ExpansionOptions::default(),
    );
    let df = bundle.corpus.db.df_table_resized(bundle.vocab.len());

    c.bench_function("selection_log_likelihood", |b| {
        b.iter(|| {
            select_facet_terms(
                SelectionInputs {
                    df: &df,
                    df_c: contextualized.df_table(),
                    n_docs: bundle.corpus.db.len() as u64,
                },
                SelectionStatistic::LogLikelihood,
                800,
                3,
            )
        })
    });
    c.bench_function("selection_chi_square_ablation", |b| {
        b.iter(|| {
            select_facet_terms(
                SelectionInputs {
                    df: &df,
                    df_c: contextualized.df_table(),
                    n_docs: bundle.corpus.db.len() as u64,
                },
                SelectionStatistic::ChiSquare,
                800,
                3,
            )
        })
    });

    let candidates = select_facet_terms(
        SelectionInputs {
            df: &df,
            df_c: contextualized.df_table(),
            n_docs: bundle.corpus.db.len() as u64,
        },
        SelectionStatistic::LogLikelihood,
        400,
        3,
    );
    let terms: Vec<_> = candidates.iter().map(|x| x.term).collect();
    let mut group = c.benchmark_group("hierarchy");
    group.sample_size(10);
    group.bench_function("subsumption_forest", |b| {
        b.iter(|| {
            build_subsumption_forest(
                &terms,
                &contextualized.doc_terms,
                SubsumptionParams::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_extractors, bench_resources);
criterion_main!(benches);
