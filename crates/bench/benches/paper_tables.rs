//! One benchmark per paper table/figure: measures the wall-clock cost of
//! regenerating each experiment at reduced scale. The `experiments`
//! binary produces the actual numbers; these benches track the cost of
//! producing them (and catch pathological regressions in any stage).

use criterion::{criterion_group, criterion_main, Criterion};
use facet_bench::drivers;
use facet_corpus::RecipeKind;

/// Scale used by the benches: small enough for Criterion iteration,
/// large enough to exercise every stage.
const SCALE: f64 = 0.1;

fn bench_pilot_and_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.bench_function("table1_pilot_study", |b| {
        b.iter(|| drivers::run_pilot(SCALE))
    });
    group.bench_function("figure4_gold_terms", |b| {
        b.iter(|| drivers::run_figure4(SCALE, 40))
    });
    group.bench_function("figure5_baseline", |b| {
        b.iter(|| drivers::run_figure5(SCALE, 25))
    });
    group.finish();
}

fn bench_grids(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_grids");
    group.sample_size(10);
    group.bench_function("tables_2_and_5_snyt_grid", |b| {
        b.iter(|| drivers::run_dataset_tables(RecipeKind::Snyt, SCALE, 800))
    });
    group.bench_function("tables_3_and_6_snb_grid", |b| {
        b.iter(|| drivers::run_dataset_tables(RecipeKind::Snb, SCALE / 4.0, 800))
    });
    group.bench_function("tables_4_and_7_mnyt_grid", |b| {
        b.iter(|| drivers::run_dataset_tables(RecipeKind::Mnyt, SCALE / 8.0, 800))
    });
    group.finish();
}

fn bench_studies(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_studies");
    group.sample_size(10);
    group.bench_function("sensitivity_curve", |b| {
        b.iter(|| drivers::run_sensitivity(RecipeKind::Snyt, SCALE))
    });
    group.bench_function("user_study_5x5", |b| {
        b.iter(|| drivers::run_user_study_experiment(SCALE))
    });
    group.finish();
}

criterion_group!(benches, bench_pilot_and_figures, bench_grids, bench_studies);
criterion_main!(benches);
