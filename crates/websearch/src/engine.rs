//! The search engine: ranked retrieval plus snippet extraction.

use crate::index::{index_terms, InvertedIndex, WebDocId, WebPage};
use crate::rank::{bm25_rank, Bm25Params};
use facet_obs::{Counter, HistogramHandle, Recorder};
use facet_textkit::tokens;

/// One search result.
#[derive(Debug, Clone)]
pub struct SearchHit {
    /// The matching page.
    pub doc: WebDocId,
    /// BM25 score.
    pub score: f64,
    /// Result snippet (a token window around the first query hit).
    pub snippet: String,
}

/// A search engine over a fixed web corpus.
#[derive(Debug)]
pub struct SearchEngine {
    pages: Vec<WebPage>,
    index: InvertedIndex,
    params: Bm25Params,
    /// Snippet radius in tokens on each side of the first hit.
    pub snippet_radius: usize,
    /// Total queries served (`web.queries` when instrumented).
    queries: Counter,
    /// Per-query latency (`web.latency_us` when instrumented).
    latency: HistogramHandle,
}

impl SearchEngine {
    /// Index `pages` and return the engine.
    pub fn new(pages: Vec<WebPage>) -> Self {
        let index = InvertedIndex::build(&pages);
        Self {
            pages,
            index,
            params: Bm25Params::default(),
            snippet_radius: 40,
            queries: Counter::noop(),
            latency: HistogramHandle::noop(),
        }
    }

    /// Attach an observability recorder: every [`SearchEngine::search`]
    /// call increments `web.queries` and records `web.latency_us`.
    pub fn instrument(&mut self, recorder: &Recorder) {
        self.queries = recorder.counter("web.queries");
        self.latency = recorder.histogram("web.latency_us");
    }

    /// The underlying index (read-only).
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The page with the given id.
    pub fn page(&self, id: WebDocId) -> &WebPage {
        &self.pages[id.index()]
    }

    /// Number of indexed pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if the engine has no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Search with a free-text query; returns the top `k` hits with
    /// snippets.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        self.queries.incr();
        // The wall clock stays inside facet-obs: a live latency handle
        // times the query, a noop handle runs it untimed.
        self.latency.time_if(|| {
            let q_terms = index_terms(query);
            let ranked = bm25_rank(&self.index, &q_terms, self.params);
            ranked
                .into_iter()
                .take(k)
                .map(|(doc, score)| SearchHit {
                    doc,
                    score,
                    snippet: self.snippet(doc, &q_terms),
                })
                .collect()
        })
    }

    /// Build a snippet for `doc`: a window of `snippet_radius` tokens on
    /// each side of the first occurrence of any query term; the page start
    /// if nothing matches.
    fn snippet(&self, doc: WebDocId, q_terms: &[String]) -> String {
        let text = self.pages[doc.index()].full_text();
        let toks = tokens(&text);
        let hit = toks
            .iter()
            .position(|t| {
                let w = t.text.to_lowercase();
                q_terms.contains(&w)
            })
            .unwrap_or(0);
        let start = hit.saturating_sub(self.snippet_radius);
        let end = (hit + self.snippet_radius + 1).min(toks.len());
        if start >= end {
            return String::new();
        }
        let byte_start = toks[start].start;
        let byte_end = toks[end - 1].end;
        text[byte_start..byte_end].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::WebPage;

    fn engine() -> SearchEngine {
        SearchEngine::new(vec![
            WebPage {
                id: WebDocId(0),
                title: "France summit".into(),
                text: "Political leaders gathered for the summit in France to discuss trade."
                    .into(),
            },
            WebPage {
                id: WebDocId(1),
                title: "Markets".into(),
                text: "Markets in Asia were calm.".into(),
            },
        ])
    }

    #[test]
    fn search_returns_relevant_hit_with_snippet() {
        let e = engine();
        let hits = e.search("France summit", 5);
        assert_eq!(hits[0].doc, WebDocId(0));
        assert!(hits[0].snippet.to_lowercase().contains("summit"));
    }

    #[test]
    fn k_limits_results() {
        let e = engine();
        let hits = e.search("markets france", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn no_match_empty() {
        let e = engine();
        assert!(e.search("zebra", 5).is_empty());
        assert!(e.search("", 5).is_empty());
    }

    #[test]
    fn instrumented_engine_counts_queries() {
        let mut e = engine();
        let rec = facet_obs::Recorder::enabled();
        e.instrument(&rec);
        e.search("France", 5);
        e.search("markets", 5);
        let counts = rec.snapshot_counts_only();
        assert_eq!(counts["counter.web.queries"], 2);
        assert_eq!(counts["histogram.web.latency_us.count"], 2);
    }

    #[test]
    fn snippet_window_bounded() {
        let mut e = engine();
        e.snippet_radius = 2;
        let hits = e.search("trade", 1);
        let words = hits[0].snippet.split_whitespace().count();
        assert!(words <= 6, "snippet too long: {}", hits[0].snippet);
    }
}
