//! BM25 ranking over the inverted index.

use crate::index::{InvertedIndex, WebDocId};
use std::collections::HashMap;

/// BM25 parameters.
#[derive(Debug, Clone, Copy)]
pub struct Bm25Params {
    /// Term-frequency saturation.
    pub k1: f64,
    /// Length normalization.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

/// IDF with the standard BM25 smoothing (never negative).
fn idf(n_docs: usize, df: usize) -> f64 {
    let n = n_docs as f64;
    let df = df as f64;
    (((n - df + 0.5) / (df + 0.5)) + 1.0).ln()
}

/// Score all documents matching any of `query_terms`; returns
/// `(doc, score)` sorted by descending score (ties by doc id for
/// determinism).
pub fn bm25_rank(
    index: &InvertedIndex,
    query_terms: &[String],
    params: Bm25Params,
) -> Vec<(WebDocId, f64)> {
    let avg_len = index.avg_doc_len().max(1.0);
    let mut scores: HashMap<WebDocId, f64> = HashMap::new();
    for term in query_terms {
        let postings = index.postings(term);
        if postings.is_empty() {
            continue;
        }
        let w = idf(index.n_docs(), postings.len());
        for p in postings {
            let tf = p.tf as f64;
            let len_norm = 1.0 - params.b + params.b * index.doc_len(p.doc) as f64 / avg_len;
            let contrib = w * (tf * (params.k1 + 1.0)) / (tf + params.k1 * len_norm);
            *scores.entry(p.doc).or_insert(0.0) += contrib;
        }
    }
    let mut out: Vec<(WebDocId, f64)> = scores.into_iter().collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{InvertedIndex, WebPage};

    fn index() -> InvertedIndex {
        InvertedIndex::build(&[
            WebPage {
                id: WebDocId(0),
                title: "A".into(),
                text: "summit summit summit in France".into(),
            },
            WebPage {
                id: WebDocId(1),
                title: "B".into(),
                text: "summit once, about markets and trade".into(),
            },
            WebPage {
                id: WebDocId(2),
                title: "C".into(),
                text: "nothing relevant here at all".into(),
            },
        ])
    }

    #[test]
    fn matching_docs_only() {
        let idx = index();
        let hits = bm25_rank(&idx, &["summit".into()], Bm25Params::default());
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn higher_tf_ranks_higher() {
        let idx = index();
        let hits = bm25_rank(&idx, &["summit".into()], Bm25Params::default());
        assert_eq!(hits[0].0, WebDocId(0));
        assert!(hits[0].1 > hits[1].1);
    }

    #[test]
    fn multi_term_union() {
        let idx = index();
        let hits = bm25_rank(
            &idx,
            &["summit".into(), "markets".into()],
            Bm25Params::default(),
        );
        // Doc 1 matches both terms; despite lower tf on "summit" the extra
        // term can lift it — just verify both docs present and scores
        // positive.
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.1 > 0.0));
    }

    #[test]
    fn idf_is_positive_even_for_common_terms() {
        assert!(idf(10, 10) > 0.0);
        assert!(idf(10, 1) > idf(10, 5));
    }

    #[test]
    fn empty_query() {
        let idx = index();
        assert!(bm25_rank(&idx, &[], Bm25Params::default()).is_empty());
    }
}
