//! Synthetic web generation.
//!
//! Web pages differ from news stories in one way that matters to the
//! paper's mechanism: page authors *do* use general category terms. A fan
//! page about a politician says "one of the most influential political
//! leaders in Europe"; a company profile says "a semiconductors group".
//! That is why querying the web with an important term surfaces facet
//! terms as frequent snippet co-occurrences — and why the same snippets
//! drag in unrelated chatter, making Google the noisiest resource.

use crate::index::{WebDocId, WebPage};
use facet_knowledge::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for web generation.
#[derive(Debug, Clone)]
pub struct WebGenConfig {
    /// RNG seed.
    pub seed: u64,
    /// Maximum pages per entity (scaled by entity popularity).
    pub max_pages_per_entity: usize,
    /// Probability that a facet term of the page's entity is mentioned.
    pub facet_mention_rate: f64,
    /// Number of pure chatter pages (no entity focus).
    pub chatter_pages: usize,
    /// Number of random chatter words injected into each entity page.
    pub noise_words_per_page: usize,
}

impl Default for WebGenConfig {
    fn default() -> Self {
        Self {
            seed: 0x3EB,
            max_pages_per_entity: 6,
            facet_mention_rate: 0.65,
            chatter_pages: 100,
            noise_words_per_page: 4,
        }
    }
}

/// Generate the synthetic web for `world`.
pub fn generate_web(world: &World, config: &WebGenConfig) -> Vec<WebPage> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pages = Vec::new();
    // Reverse relations: pages about a country mention its cities and
    // residents, the way real web pages about France mention Paris.
    let mut reverse_related: Vec<Vec<usize>> = vec![Vec::new(); world.entities.len()];
    for (i, e) in world.entities.iter().enumerate() {
        for r in &e.related {
            let bucket = &mut reverse_related[r.index()];
            if bucket.len() < 16 {
                bucket.push(i);
            }
        }
    }

    // Varied phrasing pools whose connective words are all *stopwords*:
    // like real prose, the glue between content words carries no signal
    // and is filtered by the snippet miner. The variable `{B}` slot draws
    // a random background word per use, so no non-stopword boilerplate
    // recurs across snippets. What recurs for an entity are its facet
    // terms and related names — exactly the signal the paper's Google
    // resource mines from snippets.
    const LEAD_TEMPLATES: &[&str] = &[
        "All about {E}. ",
        "{E} and more. ",
        "This is {E}. ",
        "About {E} and the {B}. ",
        "{E}, again. ",
        "Here is {E}. ",
    ];
    const FACET_TEMPLATES: &[&str] = &[
        "{E} is about {T} and the {B}. ",
        "More of {T} from {E} with some {B}. ",
        "{E} has been all about {T} and {B}. ",
        "{T} is what {E} is about, not the {B}. ",
        "{E} and {T}: more than any {B}. ",
        "For {T}, it is {E} over the {B}. ",
        "{E} on {T} and other {B}. ",
        "{T} with {E}, again and again, not {B}. ",
    ];
    const RELATED_TEMPLATES: &[&str] = &[
        "And then there is {R}. ",
        "{R} too. ",
        "With {R} and more. ",
        "{R}, of all of them. ",
    ];
    for e in &world.entities {
        // Even obscure entities have a few pages about them on the real
        // web; popularity adds more.
        let n_pages = 3
            + (e.popularity * config.max_pages_per_entity.saturating_sub(3) as f64).round()
                as usize;
        for pi in 0..n_pages {
            let mut text = String::new();
            let lead = LEAD_TEMPLATES[rng.gen_range(0..LEAD_TEMPLATES.len())];
            let b0 = world.background[rng.gen_range(0..world.background.len())].clone();
            text.push_str(&lead.replace("{E}", &e.name).replace("{B}", &b0));
            if let Some(v) = e.variants.first() {
                if rng.gen_bool(0.5) {
                    text.push_str(&format!("Or {v}. "));
                }
            }
            // Facet-term mentions (the useful signal).
            for node in world.entity_facet_closure(e.id) {
                if rng.gen_bool(config.facet_mention_rate) {
                    let term = &world.ontology.node(node).term;
                    let t = FACET_TEMPLATES[rng.gen_range(0..FACET_TEMPLATES.len())];
                    let b = world.background[rng.gen_range(0..world.background.len())].clone();
                    text.push_str(
                        &t.replace("{E}", &e.name)
                            .replace("{T}", term)
                            .replace("{B}", &b),
                    );
                }
            }
            // Related entities.
            for &r in e.related.iter().take(3) {
                let t = RELATED_TEMPLATES[rng.gen_range(0..RELATED_TEMPLATES.len())];
                text.push_str(&t.replace("{R}", &world.entity(r).name));
            }
            // Reverse-related entities (a country's cities and people):
            // pages about a place name the places and people in it, often
            // repeatedly, which is what makes them co-occur across result
            // snippets.
            let rev = &reverse_related[e.id.index()];
            let rev_head = rev.len().min(10);
            for _ in 0..rev.len().min(8) {
                let r = rev[rng.gen_range(0..rev_head)];
                let t = RELATED_TEMPLATES[rng.gen_range(0..RELATED_TEMPLATES.len())];
                text.push_str(&t.replace("{R}", &world.entities[r].name));
            }
            // A few concept nouns from the world (weak topical signal).
            for _ in 0..2 {
                let c = &world.concepts[rng.gen_range(0..world.concepts.len())];
                text.push_str(&format!("And the {} too. ", c.noun));
            }
            // Chatter noise: uniform over the long tail of the background
            // vocabulary, so chatter rarely repeats across snippets (the
            // min-snippet-count filter of the Google resource then prunes
            // most of it — but not all, which is the paper's precision
            // story for Google).
            for _ in 0..config.noise_words_per_page {
                let w1 = world.background[rng.gen_range(0..world.background.len())].clone();
                let w2 = world.background[rng.gen_range(0..world.background.len())].clone();
                text.push_str(&format!("More about {w1} and {w2}. "));
            }
            // Occasionally a random *other* entity (false co-occurrence).
            if rng.gen_bool(0.3) {
                let other = &world.entities[rng.gen_range(0..world.entities.len())];
                text.push_str(&format!("And also {}. ", other.name));
            }
            pages.push(WebPage {
                id: WebDocId(pages.len() as u32),
                title: format!("{} {}", e.name, pi + 1),
                text,
            });
        }
    }

    // Pure chatter pages (stopword glue; long-tail vocabulary only, so no
    // head word recurs across a query's snippets).
    let tail_start = (world.background.len() / 2).min(200);
    let tail = |rng: &mut StdRng| -> String {
        world.background[rng.gen_range(tail_start..world.background.len())].clone()
    };
    for _ci in 0..config.chatter_pages {
        let mut text = String::new();
        for _ in 0..20 {
            let w1 = tail(&mut rng);
            let w2 = tail(&mut rng);
            text.push_str(&format!("More of the {w1} and some {w2}. "));
        }
        let t1 = tail(&mut rng);
        let t2 = tail(&mut rng);
        pages.push(WebPage {
            id: WebDocId(pages.len() as u32),
            title: format!("{t1} {t2}"),
            text,
        });
    }

    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use facet_knowledge::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig {
            seed: 51,
            countries: 6,
            cities_per_country: 2,
            people: 20,
            corporations: 8,
            organizations: 5,
            events: 4,
            extra_concepts: 10,
            topics: 15,
            gazetteer_coverage: 0.9,
            wordnet_city_coverage: 0.5,
            background_words: 60,
        })
    }

    #[test]
    fn page_counts_scale_with_popularity() {
        let w = world();
        let cfg = WebGenConfig {
            chatter_pages: 10,
            ..Default::default()
        };
        let pages = generate_web(&w, &cfg);
        assert!(
            pages.len() > w.entities.len(),
            "at least one page per entity plus chatter"
        );
        // Dense ids.
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(p.id.index(), i);
        }
    }

    #[test]
    fn entity_pages_mention_facet_terms() {
        let w = world();
        let pages = generate_web(&w, &WebGenConfig::default());
        // For a popular person, some page must mention one of their facet
        // terms.
        let person = w
            .entities
            .iter()
            .find(|e| e.kind == facet_knowledge::EntityKind::Person)
            .unwrap();
        let facet_terms: Vec<String> = w
            .entity_facet_closure(person.id)
            .iter()
            .map(|&n| w.ontology.node(n).term.clone())
            .collect();
        let found = pages.iter().any(|p| {
            p.text.contains(&person.name) && facet_terms.iter().any(|t| p.text.contains(t))
        });
        assert!(found, "no page links {} to its facet terms", person.name);
    }

    #[test]
    fn deterministic() {
        let w = world();
        let p1 = generate_web(&w, &WebGenConfig::default());
        let p2 = generate_web(&w, &WebGenConfig::default());
        assert_eq!(p1.len(), p2.len());
        assert_eq!(p1[0].text, p2[0].text);
    }
}
