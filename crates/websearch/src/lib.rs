#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # facet-websearch
//!
//! A self-contained web-search substrate standing in for Google in the
//! paper's "Google" context resource (Section IV-B): "we query Google with
//! a given term, and then retrieve as context terms the most frequent
//! words and phrases that appear in the returned snippets."
//!
//! Components:
//!
//! * [`webgen`] — generates a synthetic web: pages about the world's
//!   entities (which, unlike news stories, *do* use general facet terms),
//!   plus off-topic chatter pages and noisy co-occurrences. The noise is
//!   what reproduces the paper's finding that Google expansion has the
//!   highest recall but the lowest precision of the four resources.
//! * [`index`] — an inverted index with document and term statistics.
//! * [`rank`] — BM25 ranking (k1 = 1.2, b = 0.75).
//! * [`engine`] — the query API: ranked retrieval plus snippet extraction
//!   (a token window around the first query hit, like a result page).

pub mod engine;
pub mod index;
pub mod rank;
pub mod webgen;

pub use engine::{SearchEngine, SearchHit};
pub use index::{InvertedIndex, WebDocId, WebPage};
pub use rank::Bm25Params;
pub use webgen::{generate_web, WebGenConfig};
