//! Web pages and the inverted index.

use facet_textkit::{is_stopword, tokens, Interner, TokenKind};
use std::collections::BTreeMap;

/// Index of a page in the web corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WebDocId(pub u32);

impl WebDocId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A web page: a title and body text.
#[derive(Debug, Clone)]
pub struct WebPage {
    /// This page's id.
    pub id: WebDocId,
    /// Page title.
    pub title: String,
    /// Body text.
    pub text: String,
}

impl WebPage {
    /// Title and body concatenated.
    pub fn full_text(&self) -> String {
        format!("{}. {}", self.title, self.text)
    }
}

/// A posting: document and term frequency within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// The document.
    pub doc: WebDocId,
    /// Term frequency in the document.
    pub tf: u32,
}

/// Tokenize text into lowercase index terms (words only, stopwords and
/// single characters dropped).
pub fn index_terms(text: &str) -> Vec<String> {
    tokens(text)
        .iter()
        .filter(|t| t.kind == TokenKind::Word)
        .map(|t| t.text.to_lowercase())
        .filter(|w| w.len() >= 2 && !is_stopword(w))
        .collect()
}

/// An inverted index over web pages.
///
/// Terms are interned into an arena [`Interner`] and posting lists live
/// in a dense symbol-indexed table — no per-term `String` keys and no
/// hash-map iteration order anywhere near the read path.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    terms: Interner,
    /// Posting lists indexed by the term's symbol.
    postings: Vec<Vec<Posting>>,
    doc_len: Vec<u32>,
    total_len: u64,
}

impl InvertedIndex {
    /// Build the index over `pages` (ids must be dense from zero).
    pub fn build(pages: &[WebPage]) -> Self {
        let mut terms_tab = Interner::new();
        let mut postings: Vec<Vec<Posting>> = Vec::new();
        let mut doc_len = Vec::with_capacity(pages.len());
        let mut total_len = 0u64;
        for page in pages {
            debug_assert_eq!(page.id.index(), doc_len.len(), "dense page ids required");
            let terms = index_terms(&page.full_text());
            // BTreeMap so per-document term frequencies replay in sorted
            // term order — postings construction is fully deterministic.
            let mut counts: BTreeMap<&str, u32> = BTreeMap::new();
            for t in &terms {
                *counts.entry(t.as_str()).or_insert(0) += 1;
            }
            for (term, tf) in counts {
                let sym = terms_tab.intern(term);
                if sym.index() == postings.len() {
                    postings.push(Vec::new());
                }
                postings[sym.index()].push(Posting { doc: page.id, tf });
            }
            doc_len.push(terms.len() as u32);
            total_len += terms.len() as u64;
        }
        // Posting lists are doc-ordered by construction: the outer loop
        // visits pages in dense id order and pushes each (doc, tf) pair
        // at most once per list, so no re-sort is needed (asserted by the
        // `postings_sorted_by_doc` regression test).
        Self {
            terms: terms_tab,
            postings,
            doc_len,
            total_len,
        }
    }

    /// Postings for a term (empty if unseen).
    pub fn postings(&self, term: &str) -> &[Posting] {
        self.terms
            .get(term)
            .map(|s| self.postings[s.index()].as_slice())
            .unwrap_or(&[])
    }

    /// Document frequency of a term.
    pub fn df(&self, term: &str) -> usize {
        self.postings(term).len()
    }

    /// Number of indexed documents.
    pub fn n_docs(&self) -> usize {
        self.doc_len.len()
    }

    /// Length (in indexed terms) of a document.
    pub fn doc_len(&self, doc: WebDocId) -> u32 {
        self.doc_len[doc.index()]
    }

    /// Average document length.
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_len.is_empty() {
            0.0
        } else {
            self.total_len as f64 / self.doc_len.len() as f64
        }
    }

    /// Number of distinct terms.
    pub fn vocabulary_size(&self) -> usize {
        self.terms.len()
    }

    /// Iterate over `(term, postings)` pairs in symbol (first-seen) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Posting])> {
        self.terms
            .iter()
            .map(|(s, t)| (t, self.postings[s.index()].as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages() -> Vec<WebPage> {
        vec![
            WebPage {
                id: WebDocId(0),
                title: "France".into(),
                text: "France hosted the summit in Paris.".into(),
            },
            WebPage {
                id: WebDocId(1),
                title: "Markets".into(),
                text: "The markets rallied after the summit.".into(),
            },
        ]
    }

    #[test]
    fn postings_and_df() {
        let idx = InvertedIndex::build(&pages());
        assert_eq!(idx.df("summit"), 2);
        assert_eq!(idx.df("paris"), 1);
        assert_eq!(idx.df("unknown"), 0);
        assert_eq!(idx.n_docs(), 2);
    }

    #[test]
    fn tf_counts_occurrences() {
        let idx = InvertedIndex::build(&pages());
        let france = idx.postings("france");
        assert_eq!(france.len(), 1);
        assert_eq!(france[0].tf, 2, "title + body mention");
    }

    #[test]
    fn stopwords_not_indexed() {
        let idx = InvertedIndex::build(&pages());
        assert_eq!(idx.df("the"), 0);
    }

    #[test]
    fn doc_lengths() {
        let idx = InvertedIndex::build(&pages());
        assert!(idx.doc_len(WebDocId(0)) >= 4);
        assert!(idx.avg_doc_len() > 0.0);
    }

    #[test]
    fn postings_sorted_by_doc() {
        // Guards the no-re-sort invariant in `build`: every posting list
        // must come out strictly increasing by doc id, with at most one
        // posting per (term, doc) pair.
        let pages: Vec<WebPage> = (0..30)
            .map(|i| WebPage {
                id: WebDocId(i),
                title: format!("Page {i}"),
                text: format!(
                    "shared summit text number {i} plus repeated summit word {}",
                    if i % 2 == 0 {
                        "even markets"
                    } else {
                        "odd politics"
                    }
                ),
            })
            .collect();
        let idx = InvertedIndex::build(&pages);
        assert!(idx.vocabulary_size() > 5);
        for (term, list) in idx.iter() {
            assert!(
                list.windows(2).all(|w| w[0].doc < w[1].doc),
                "postings for {term:?} not strictly doc-ordered: {list:?}"
            );
        }
        assert_eq!(idx.df("summit"), 30);
    }

    #[test]
    fn empty_index() {
        let idx = InvertedIndex::build(&[]);
        assert_eq!(idx.n_docs(), 0);
        assert_eq!(idx.avg_doc_len(), 0.0);
        assert!(idx.postings("x").is_empty());
    }
}
