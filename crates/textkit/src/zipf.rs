//! Zipfian distribution utilities.
//!
//! The paper leans on the Zipfian nature of term frequencies twice: the
//! frequency-based shift `Shift_f` is biased by it (Section IV-C), and the
//! chi-square test is rejected because power-law frequencies violate its
//! assumptions. The synthetic corpus generator therefore draws its
//! background vocabulary from a Zipf distribution so the reproduction
//! exhibits the same statistical regime.
//!
//! This module is RNG-agnostic: [`Zipf::sample`] maps a uniform `[0,1)`
//! value to a rank via inverse-CDF lookup, so callers can plug in any
//! random source (the generators use seeded `StdRng`).

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution for `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point droop at the end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Map a uniform value `u ∈ [0,1)` to a rank in `0..n` by inverse CDF.
    ///
    /// Values outside `[0,1)` are clamped.
    pub fn sample(&self, u: f64) -> usize {
        let u = u.clamp(0.0, 1.0 - f64::EPSILON);
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let z = Zipf::new(100, 1.07);
        let mut prev = 0.0;
        for k in 0..100 {
            let c = z.pmf(k) + prev;
            assert!(c >= prev);
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_most_probable() {
        let z = Zipf::new(50, 1.0);
        for k in 1..50 {
            assert!(z.pmf(0) >= z.pmf(k));
        }
    }

    #[test]
    fn sample_extremes() {
        let z = Zipf::new(10, 1.0);
        assert_eq!(z.sample(0.0), 0);
        assert!(z.sample(0.9999999) < 10);
        // Out-of-range inputs clamp instead of panicking.
        assert_eq!(z.sample(-1.0), 0);
        assert!(z.sample(2.0) < 10);
    }

    #[test]
    fn sample_matches_cdf_midpoints() {
        let z = Zipf::new(4, 1.0);
        // With s=1, masses ∝ 1, 1/2, 1/3, 1/4 → normalized ≈ .48, .24, .16, .12
        assert_eq!(z.sample(0.1), 0);
        assert_eq!(z.sample(0.5), 1);
        assert_eq!(z.sample(0.8), 2);
        assert_eq!(z.sample(0.95), 3);
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        assert_eq!(z.sample(0.5), 0);
        assert_eq!(z.pmf(0), 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
