#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # facet-textkit
//!
//! Text-processing substrate for the facet-hierarchy extraction system.
//!
//! The paper ("Automatic Extraction of Useful Facet Hierarchies from Text
//! Databases", Dakka & Ipeirotis, ICDE 2008) operates on *terms*: single
//! words and multi-word phrases extracted from news articles. This crate
//! provides everything needed to go from raw text to term statistics:
//!
//! * [`tokenize`] — a deterministic word/sentence tokenizer,
//! * [`stem`] — a full Porter stemmer,
//! * [`stopwords`] — a standard English stopword list,
//! * [`phrase`] — n-gram and capitalized-phrase iterators,
//! * [`sym`] — the global arena-backed term interner ([`Sym`], [`Interner`],
//!   [`FrozenInterner`], dense [`SymTable`] maps),
//! * [`vocab`] — an interning vocabulary mapping terms to dense [`TermId`]s
//!   (a facade over [`sym`]),
//! * [`zipf`] — Zipfian samplers used by the synthetic corpus generators.
//!
//! Everything here is written from scratch with no external NLP
//! dependencies, so the whole reproduction is self-contained.

pub mod phrase;
pub mod stem;
pub mod stopwords;
pub mod sym;
pub mod tokenize;
pub mod vocab;
pub mod zipf;

pub use phrase::{ngrams, proper_noun_phrases};
pub use stem::porter_stem;
pub use stopwords::is_stopword;
pub use sym::{FrozenInterner, InternStats, Interner, Sym, SymTable};
pub use tokenize::{sentences, tokens, Token, TokenKind};
pub use vocab::{FrozenVocabulary, TermId, Vocabulary};
pub use zipf::Zipf;

/// Normalize a raw term for frequency counting: lowercase and collapse
/// internal whitespace. Multi-word phrases stay phrases ("Jacques Chirac"
/// becomes "jacques chirac").
pub fn normalize_term(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut last_space = true;
    for ch in raw.chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lowercases() {
        assert_eq!(normalize_term("Jacques Chirac"), "jacques chirac");
    }

    #[test]
    fn normalize_collapses_whitespace() {
        assert_eq!(normalize_term("  G8\t Summit \n"), "g8 summit");
    }

    #[test]
    fn normalize_empty() {
        assert_eq!(normalize_term(""), "");
        assert_eq!(normalize_term("   "), "");
    }
}
