//! Phrase extraction: n-grams over word tokens and capitalized
//! ("proper-noun") phrase detection.
//!
//! The paper's notion of *term* covers both single words and multi-word
//! phrases (footnote 2). The Wikipedia title extractor matches multi-word
//! page titles against document text, and the rule-based part of the NER
//! substrate uses capitalized runs; both build on this module.

use crate::tokenize::{tokens, Token, TokenKind};

/// Yield all word-level n-grams of size `n` from `text`, joined by single
/// spaces, preserving original casing. Punctuation breaks n-gram windows
/// (an n-gram never crosses a punctuation token).
pub fn ngrams(text: &str, n: usize) -> Vec<String> {
    if n == 0 {
        return Vec::new();
    }
    let toks = tokens(text);
    let mut out = Vec::new();
    // Split token stream into punctuation-free runs.
    let mut run: Vec<&Token<'_>> = Vec::new();
    let flush = |run: &mut Vec<&Token<'_>>, out: &mut Vec<String>| {
        if run.len() >= n {
            for w in run.windows(n) {
                let mut s = String::new();
                for (i, t) in w.iter().enumerate() {
                    if i > 0 {
                        s.push(' ');
                    }
                    s.push_str(t.text);
                }
                out.push(s);
            }
        }
        run.clear();
    };
    for t in &toks {
        match t.kind {
            TokenKind::Punct => flush(&mut run, &mut out),
            _ => run.push(t),
        }
    }
    flush(&mut run, &mut out);
    out
}

/// Extract maximal runs of capitalized word tokens ("proper-noun phrases"),
/// e.g. `"Jacques Chirac"` from `"President Jacques Chirac visited"`.
///
/// A run may include connective lowercase words "of", "the", "de" when they
/// are *internal* to the run (e.g. "Bank of England"). Sentence-initial
/// single capitalized words are included too — disambiguating them is the
/// NER substrate's job (it consults a gazetteer).
pub fn proper_noun_phrases(text: &str) -> Vec<String> {
    const CONNECTIVES: &[&str] = &["of", "the", "de", "la", "von", "van", "al"];
    let toks = tokens(text);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Word && t.is_capitalized() {
            let start = i;
            let mut end = i + 1; // exclusive, last accepted capitalized word + 1
            let mut j = i + 1;
            while j < toks.len() {
                let tj = &toks[j];
                if tj.kind == TokenKind::Word && tj.is_capitalized() {
                    j += 1;
                    end = j;
                } else if tj.kind == TokenKind::Word
                    && CONNECTIVES.contains(&tj.text)
                    && j + 1 < toks.len()
                    && toks[j + 1].kind == TokenKind::Word
                    && toks[j + 1].is_capitalized()
                {
                    j += 2;
                    end = j;
                } else {
                    break;
                }
            }
            let mut phrase = String::new();
            for (k, t) in toks[start..end].iter().enumerate() {
                if k > 0 {
                    phrase.push(' ');
                }
                phrase.push_str(t.text);
            }
            out.push(phrase);
            i = end.max(i + 1);
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unigrams_equal_words() {
        assert_eq!(
            ngrams("alpha beta gamma", 1),
            vec!["alpha", "beta", "gamma"]
        );
    }

    #[test]
    fn bigrams() {
        assert_eq!(
            ngrams("alpha beta gamma", 2),
            vec!["alpha beta", "beta gamma"]
        );
    }

    #[test]
    fn ngrams_do_not_cross_punctuation() {
        assert_eq!(
            ngrams("alpha beta. gamma delta", 2),
            vec!["alpha beta", "gamma delta"]
        );
    }

    #[test]
    fn ngram_zero_and_oversize() {
        assert!(ngrams("alpha beta", 0).is_empty());
        assert!(ngrams("alpha beta", 3).is_empty());
    }

    #[test]
    fn proper_phrases_basic() {
        let p = proper_noun_phrases("President Jacques Chirac visited Paris yesterday.");
        assert_eq!(p, vec!["President Jacques Chirac", "Paris"]);
    }

    #[test]
    fn proper_phrases_with_connective() {
        let p = proper_noun_phrases("The Bank of England raised rates.");
        assert_eq!(p, vec!["The Bank of England"]);
    }

    #[test]
    fn connective_at_end_not_swallowed() {
        let p = proper_noun_phrases("Paris of the north");
        assert_eq!(p, vec!["Paris"]);
    }

    #[test]
    fn no_capitalized_words() {
        assert!(proper_noun_phrases("all lowercase words here").is_empty());
    }
}
