//! A complete implementation of the Porter stemming algorithm
//! (M.F. Porter, "An algorithm for suffix stripping", 1980).
//!
//! The facet pipeline counts document frequencies over normalized terms;
//! stemming conflates inflectional variants ("markets" / "market") so that
//! the comparative frequency analysis of Section IV-C of the paper sees one
//! statistical unit per concept word.
//!
//! The implementation operates on lowercase ASCII; non-ASCII words are
//! returned unchanged (the synthetic corpora are ASCII).

/// Stem a single lowercase word with the Porter algorithm.
///
/// ```
/// use facet_textkit::porter_stem;
/// assert_eq!(porter_stem("markets"), "market");
/// assert_eq!(porter_stem("nationalization"), "nation");
/// ```
///
/// Words shorter than 3 characters and words containing non-ASCII-alphabetic
/// characters are returned unchanged, per the original algorithm's guard.
pub fn porter_stem(word: &str) -> String {
    if word.len() < 3 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
        k: word.len(),
    };
    s.step1ab();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    // The stemmer only ever shortens or rewrites ASCII bytes, so lossy
    // conversion is exact; it merely avoids an unreachable panic path.
    String::from_utf8_lossy(&s.b[..s.k]).into_owned()
}

struct Stemmer {
    b: Vec<u8>,
    /// Length of the current (possibly shortened) word.
    k: usize,
}

impl Stemmer {
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.is_consonant(i - 1)
                }
            }
            _ => true,
        }
    }

    /// The "measure" m of the stem b[0..j]: number of VC sequences.
    fn measure(&self, j: usize) -> usize {
        let mut n = 0;
        let mut i = 0;
        loop {
            if i >= j {
                return n;
            }
            if !self.is_consonant(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            loop {
                if i >= j {
                    return n;
                }
                if self.is_consonant(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            loop {
                if i >= j {
                    return n;
                }
                if !self.is_consonant(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// True if the stem b[0..j] contains a vowel.
    fn has_vowel(&self, j: usize) -> bool {
        (0..j).any(|i| !self.is_consonant(i))
    }

    /// True if b[0..=j] ends with a double consonant.
    fn double_consonant(&self, j: usize) -> bool {
        j >= 1 && self.b[j] == self.b[j - 1] && self.is_consonant(j)
    }

    /// cvc test at position i: consonant-vowel-consonant, where the final
    /// consonant is not w, x, or y. Restores an `e` in words like "hop(e)".
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.is_consonant(i) || self.is_consonant(i - 1) || !self.is_consonant(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// True if the current word ends with `suffix`; sets `j` via return.
    fn ends(&self, suffix: &str) -> Option<usize> {
        let s = suffix.as_bytes();
        if s.len() > self.k {
            return None;
        }
        if &self.b[self.k - s.len()..self.k] == s {
            Some(self.k - s.len())
        } else {
            None
        }
    }

    /// Replace the suffix starting at `j` with `to`, updating `k`.
    fn set_to(&mut self, j: usize, to: &str) {
        self.b.truncate(j);
        self.b.extend_from_slice(to.as_bytes());
        self.k = self.b.len();
    }

    /// If measure(j) > 0, replace suffix at j with `to`.
    fn replace_if_m(&mut self, j: usize, to: &str) {
        if self.measure(j) > 0 {
            self.set_to(j, to);
        }
    }

    fn step1ab(&mut self) {
        // Step 1a
        if self.ends("sses").is_some() || self.ends("ies").is_some() {
            self.k -= 2;
            self.b.truncate(self.k);
        } else if let Some(j) = self.ends("ss") {
            let _ = j; // keep
        } else if self.ends("s").is_some() && self.k >= 2 {
            self.k -= 1;
            self.b.truncate(self.k);
        }
        // Step 1b
        if let Some(j) = self.ends("eed") {
            if self.measure(j) > 0 {
                self.k -= 1;
                self.b.truncate(self.k);
            }
        } else {
            let matched = if let Some(j) = self.ends("ed") {
                if self.has_vowel(j) {
                    self.k = j;
                    self.b.truncate(self.k);
                    true
                } else {
                    false
                }
            } else if let Some(j) = self.ends("ing") {
                if self.has_vowel(j) {
                    self.k = j;
                    self.b.truncate(self.k);
                    true
                } else {
                    false
                }
            } else {
                false
            };
            if matched {
                if self.ends("at").is_some()
                    || self.ends("bl").is_some()
                    || self.ends("iz").is_some()
                {
                    self.b.push(b'e');
                    self.k += 1;
                } else if self.k >= 1 && self.double_consonant(self.k - 1) {
                    let last = self.b[self.k - 1];
                    if !matches!(last, b'l' | b's' | b'z') {
                        self.k -= 1;
                        self.b.truncate(self.k);
                    }
                } else if self.measure(self.k) == 1 && self.k >= 1 && self.cvc(self.k - 1) {
                    self.b.push(b'e');
                    self.k += 1;
                }
            }
        }
    }

    fn step1c(&mut self) {
        if let Some(j) = self.ends("y") {
            if self.has_vowel(j) {
                self.b[self.k - 1] = b'i';
            }
        }
    }

    fn step2(&mut self) {
        if self.k < 2 {
            return;
        }
        // Dispatch on the penultimate character, as in Porter's reference
        // implementation (`switch (b[k-1])` with k = last index).
        let pairs: &[(&str, &str)] = match self.b[self.k - 2] {
            b'a' => &[("ational", "ate"), ("tional", "tion")],
            b'c' => &[("enci", "ence"), ("anci", "ance")],
            b'e' => &[("izer", "ize")],
            b'l' => &[
                ("bli", "ble"),
                ("alli", "al"),
                ("entli", "ent"),
                ("eli", "e"),
                ("ousli", "ous"),
            ],
            b'o' => &[("ization", "ize"), ("ation", "ate"), ("ator", "ate")],
            b's' => &[
                ("alism", "al"),
                ("iveness", "ive"),
                ("fulness", "ful"),
                ("ousness", "ous"),
            ],
            b't' => &[("aliti", "al"), ("iviti", "ive"), ("biliti", "ble")],
            b'g' => &[("logi", "log")],
            _ => &[],
        };
        for (suf, to) in pairs {
            if let Some(j) = self.ends(suf) {
                self.replace_if_m(j, to);
                return;
            }
        }
    }

    fn step3(&mut self) {
        if self.k == 0 {
            return;
        }
        let pairs: &[(&str, &str)] = match self.b[self.k - 1] {
            b'e' => &[("icate", "ic"), ("ative", ""), ("alize", "al")],
            b'i' => &[("iciti", "ic")],
            b'l' => &[("ical", "ic"), ("ful", "")],
            b's' => &[("ness", "")],
            _ => &[],
        };
        for (suf, to) in pairs {
            if let Some(j) = self.ends(suf) {
                self.replace_if_m(j, to);
                return;
            }
        }
    }

    fn step4(&mut self) {
        if self.k < 2 {
            return;
        }
        let suffixes: &[&str] = match self.b[self.k - 2] {
            b'a' => &["al"],
            b'c' => &["ance", "ence"],
            b'e' => &["er"],
            b'i' => &["ic"],
            b'l' => &["able", "ible"],
            b'n' => &["ant", "ement", "ment", "ent"],
            b'o' => &["ion", "ou"],
            b's' => &["ism"],
            b't' => &["ate", "iti"],
            b'u' => &["ous"],
            b'v' => &["ive"],
            b'z' => &["ize"],
            _ => &[],
        };
        for suf in suffixes {
            if let Some(j) = self.ends(suf) {
                // "ion" requires preceding s or t.
                if *suf == "ion" && !(j >= 1 && matches!(self.b[j - 1], b's' | b't')) {
                    continue;
                }
                if self.measure(j) > 1 {
                    self.k = j;
                    self.b.truncate(self.k);
                }
                return;
            }
        }
    }

    fn step5(&mut self) {
        // Step 5a
        if self.k >= 1 && self.b[self.k - 1] == b'e' {
            let j = self.k - 1;
            let m = self.measure(j);
            if m > 1 || (m == 1 && !(j >= 1 && self.cvc(j - 1))) {
                self.k = j;
                self.b.truncate(self.k);
            }
        }
        // Step 5b
        if self.k >= 2
            && self.b[self.k - 1] == b'l'
            && self.double_consonant(self.k - 1)
            && self.measure(self.k) > 1
        {
            self.k -= 1;
            self.b.truncate(self.k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical cases from Porter's paper and the reference vocabulary.
    #[test]
    fn reference_cases() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter_stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("by"), "by");
    }

    #[test]
    fn non_ascii_unchanged() {
        assert_eq!(porter_stem("café"), "café");
        assert_eq!(porter_stem("MIXED"), "MIXED");
    }

    #[test]
    fn news_vocabulary() {
        assert_eq!(porter_stem("markets"), "market");
        assert_eq!(porter_stem("leaders"), "leader");
        assert_eq!(porter_stem("corporations"), "corpor");
        assert_eq!(porter_stem("elections"), "elect");
        assert_eq!(porter_stem("government"), "govern");
    }

    #[test]
    fn idempotent_on_common_words() {
        for w in ["market", "running", "nationalization", "happiness", "cats"] {
            let once = porter_stem(w);
            let twice = porter_stem(&once);
            // Porter is not idempotent in general, but it is on these.
            assert_eq!(porter_stem(&twice), twice);
        }
    }
}
