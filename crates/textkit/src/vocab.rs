//! Interning vocabulary: maps term strings to dense [`TermId`]s.
//!
//! Every component of the pipeline — the text database, the contextualized
//! database, the external resources — speaks `TermId` rather than `String`,
//! so frequency tables are dense `Vec`s and set operations are cheap.
//!
//! Since the global-interner refactor, [`TermId`] *is* [`Sym`](crate::Sym)
//! and [`Vocabulary`] is a thin facade over the arena-backed
//! [`Interner`](crate::Interner): term text lives once in a contiguous
//! arena, lookup is a deterministic FNV-1a probe, and per-term `String`
//! allocations are gone from the intern path. The facade keeps the
//! vocabulary vocabulary (`intern`/`term`/`freeze`) that the rest of the
//! system is written against.

use std::sync::Arc;

use crate::sym::{InternStats, Interner};

/// A dense identifier for an interned term. Valid only with respect to the
/// [`Vocabulary`] that produced it.
///
/// `TermId` is the pipeline-facing name for the global interner's
/// [`Sym`](crate::Sym) — one id space, two vocabularies of discourse. The
/// re-export (rather than a type alias) keeps the tuple constructor and
/// patterns (`TermId(0)`) working everywhere.
pub use crate::sym::Sym as TermId;

/// An append-only string interner for terms.
///
/// ```
/// use facet_textkit::Vocabulary;
/// let mut vocab = Vocabulary::new();
/// let id = vocab.intern("political leaders");
/// assert_eq!(vocab.intern("political leaders"), id);
/// assert_eq!(vocab.term(id), "political leaders");
/// ```
///
/// Interning the same string twice yields the same [`TermId`]; ids are
/// assigned densely from zero in first-seen order, which makes them usable
/// as indices into frequency vectors. Backed by the arena
/// [`Interner`](crate::Interner): no per-term heap strings, deterministic
/// layout, and hit/miss counters surfaced via [`Vocabulary::stats`].
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    interner: Interner,
}

impl Vocabulary {
    /// Create an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty vocabulary with capacity for `n` terms.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            interner: Interner::with_capacity(n),
        }
    }

    /// Intern `term`, returning its id (allocating a new one if unseen).
    pub fn intern(&mut self, term: &str) -> TermId {
        self.interner.intern(term)
    }

    /// Look up an already-interned term without allocating.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.interner.get(term)
    }

    /// Resolve an id back to its term string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this vocabulary.
    pub fn term(&self, id: TermId) -> &str {
        self.interner.resolve(id)
    }

    /// Resolve an id if it is valid for this vocabulary.
    pub fn try_term(&self, id: TermId) -> Option<&str> {
        self.interner.try_resolve(id)
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// True if no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Iterate over `(TermId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.interner.iter()
    }

    /// Interner hit/miss/len counters (the `intern.{hits,misses,len}`
    /// observability metrics).
    pub fn stats(&self) -> InternStats {
        self.interner.stats()
    }

    /// Merge `other`'s terms into this vocabulary, extending `remap` so
    /// `remap[id.index()]` is this vocabulary's id for `other.term(id)`.
    ///
    /// Only the unprocessed suffix `remap.len()..other.len()` is replayed,
    /// so repeated merges of a growing shard vocabulary do O(new terms)
    /// work. See [`Interner::extend_remap`](crate::Interner::extend_remap).
    pub fn extend_remap(&mut self, other: &Vocabulary, remap: &mut Vec<TermId>) {
        self.interner.extend_remap(&other.interner, remap);
    }

    /// The backing interner (serialization surface; restore via
    /// [`Vocabulary::from_interner`]).
    pub fn as_interner(&self) -> &Interner {
        &self.interner
    }

    /// Wrap a restored interner (see [`Interner::from_parts`]) back into
    /// a vocabulary.
    pub fn from_interner(interner: Interner) -> Self {
        Self { interner }
    }

    /// Take an immutable, shareable snapshot of the current state.
    ///
    /// The frozen view is detached: later `intern` calls on `self` do not
    /// affect it, and every clone of the returned [`FrozenVocabulary`]
    /// shares one allocation. This is what read paths (snapshot serving,
    /// browse engines) hold instead of a `&mut Vocabulary`.
    pub fn freeze(&self) -> FrozenVocabulary {
        FrozenVocabulary {
            inner: Arc::new(self.clone()),
        }
    }
}

/// An immutable, cheaply-clonable snapshot of a [`Vocabulary`].
///
/// Produced by [`Vocabulary::freeze`]; exposes the read-only half of the
/// vocabulary API. Term ids resolved against the frozen view are exactly
/// the ids the source vocabulary had assigned at freeze time (interning
/// is append-only, so ids never change meaning — a frozen view simply
/// does not know about terms interned after it was taken).
#[derive(Debug, Clone)]
pub struct FrozenVocabulary {
    inner: Arc<Vocabulary>,
}

impl Default for FrozenVocabulary {
    /// An empty frozen view (no terms). Useful as the placeholder
    /// vocabulary of an empty forest.
    fn default() -> Self {
        Self {
            inner: Arc::new(Vocabulary::default()),
        }
    }
}

impl FrozenVocabulary {
    /// Look up an interned term.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.inner.get(term)
    }

    /// Resolve an id back to its term string.
    ///
    /// # Panics
    /// Panics if `id` was interned after this snapshot was frozen (or
    /// belongs to a different vocabulary).
    pub fn term(&self, id: TermId) -> &str {
        self.inner.term(id)
    }

    /// Resolve an id if it is valid for this snapshot.
    pub fn try_term(&self, id: TermId) -> Option<&str> {
        self.inner.try_term(id)
    }

    /// Number of terms known to this snapshot.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if the snapshot holds no terms.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate over `(TermId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.inner.iter()
    }

    /// Counters at freeze time.
    pub fn stats(&self) -> InternStats {
        self.inner.stats()
    }

    /// A full read-only view of the underlying vocabulary, for APIs that
    /// take `&Vocabulary`.
    pub fn as_vocabulary(&self) -> &Vocabulary {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("market");
        let b = v.intern("market");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_first_seen_order() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), TermId(0));
        assert_eq!(v.intern("b"), TermId(1));
        assert_eq!(v.intern("a"), TermId(0));
        assert_eq!(v.intern("c"), TermId(2));
    }

    #[test]
    fn roundtrip() {
        let mut v = Vocabulary::new();
        let id = v.intern("jacques chirac");
        assert_eq!(v.term(id), "jacques chirac");
        assert_eq!(v.get("jacques chirac"), Some(id));
        assert_eq!(v.get("unseen"), None);
    }

    #[test]
    fn try_term_out_of_range() {
        let v = Vocabulary::new();
        assert_eq!(v.try_term(TermId(5)), None);
    }

    #[test]
    fn iter_in_order() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let all: Vec<_> = v.iter().map(|(i, s)| (i.0, s.to_string())).collect();
        assert_eq!(all, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn frozen_snapshot_detached_from_later_interns() {
        let mut v = Vocabulary::new();
        let x = v.intern("x");
        let frozen = v.freeze();
        let y = v.intern("y");
        assert_eq!(frozen.get("x"), Some(x));
        assert_eq!(frozen.get("y"), None, "frozen before y was interned");
        assert_eq!(frozen.try_term(y), None);
        assert_eq!(frozen.len(), 1);
        assert_eq!(v.len(), 2);
        // Shared ids keep their meaning.
        assert_eq!(frozen.term(x), v.term(x));
        // Clones share state.
        let c = frozen.clone();
        assert_eq!(c.len(), 1);
        assert_eq!(c.as_vocabulary().get("x"), Some(x));
    }

    #[test]
    fn stats_track_interns() {
        let mut v = Vocabulary::new();
        v.intern("a");
        v.intern("a");
        v.intern("b");
        let s = v.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 2, 2));
    }

    #[test]
    fn extend_remap_delegates_to_interner() {
        let mut merged = Vocabulary::new();
        merged.intern("x");
        let mut shard = Vocabulary::new();
        shard.intern("y");
        shard.intern("x");
        let mut remap = Vec::new();
        merged.extend_remap(&shard, &mut remap);
        assert_eq!(remap, vec![TermId(1), TermId(0)]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn default_frozen_vocabulary_is_empty() {
        let f = FrozenVocabulary::default();
        assert!(f.is_empty());
        assert_eq!(f.get("anything"), None);
    }
}
