//! Interning vocabulary: maps term strings to dense [`TermId`]s.
//!
//! Every component of the pipeline — the text database, the contextualized
//! database, the external resources — speaks `TermId` rather than `String`,
//! so frequency tables are dense `Vec`s and set operations are cheap.

use std::collections::HashMap;
use std::sync::Arc;

/// A dense identifier for an interned term. Valid only with respect to the
/// [`Vocabulary`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only string interner for terms.
///
/// ```
/// use facet_textkit::Vocabulary;
/// let mut vocab = Vocabulary::new();
/// let id = vocab.intern("political leaders");
/// assert_eq!(vocab.intern("political leaders"), id);
/// assert_eq!(vocab.term(id), "political leaders");
/// ```
///
/// Interning the same string twice yields the same [`TermId`]; ids are
/// assigned densely from zero in first-seen order, which makes them usable
/// as indices into frequency vectors.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    by_term: HashMap<String, TermId>,
    terms: Vec<String>,
}

impl Vocabulary {
    /// Create an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty vocabulary with capacity for `n` terms.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            by_term: HashMap::with_capacity(n),
            terms: Vec::with_capacity(n),
        }
    }

    /// Intern `term`, returning its id (allocating a new one if unseen).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        // lint:allow(panic, reason="u32 id-space exhaustion (>4B distinct terms) is unrecoverable and unreachable for supported corpora")
        let id = TermId(u32::try_from(self.terms.len()).expect("vocabulary overflow"));
        self.terms.push(term.to_string());
        self.by_term.insert(term.to_string(), id);
        id
    }

    /// Look up an already-interned term without allocating.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// Resolve an id back to its term string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this vocabulary.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.index()]
    }

    /// Resolve an id if it is valid for this vocabulary.
    pub fn try_term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.index()).map(String::as_str)
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over `(TermId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, s)| (TermId(i as u32), s.as_str()))
    }

    /// Take an immutable, shareable snapshot of the current state.
    ///
    /// The frozen view is detached: later `intern` calls on `self` do not
    /// affect it, and every clone of the returned [`FrozenVocabulary`]
    /// shares one allocation. This is what read paths (snapshot serving,
    /// browse engines) hold instead of a `&mut Vocabulary`.
    pub fn freeze(&self) -> FrozenVocabulary {
        FrozenVocabulary {
            inner: Arc::new(self.clone()),
        }
    }
}

/// An immutable, cheaply-clonable snapshot of a [`Vocabulary`].
///
/// Produced by [`Vocabulary::freeze`]; exposes the read-only half of the
/// vocabulary API. Term ids resolved against the frozen view are exactly
/// the ids the source vocabulary had assigned at freeze time (interning
/// is append-only, so ids never change meaning — a frozen view simply
/// does not know about terms interned after it was taken).
#[derive(Debug, Clone)]
pub struct FrozenVocabulary {
    inner: Arc<Vocabulary>,
}

impl FrozenVocabulary {
    /// Look up an interned term.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.inner.get(term)
    }

    /// Resolve an id back to its term string.
    ///
    /// # Panics
    /// Panics if `id` was interned after this snapshot was frozen (or
    /// belongs to a different vocabulary).
    pub fn term(&self, id: TermId) -> &str {
        self.inner.term(id)
    }

    /// Resolve an id if it is valid for this snapshot.
    pub fn try_term(&self, id: TermId) -> Option<&str> {
        self.inner.try_term(id)
    }

    /// Number of terms known to this snapshot.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if the snapshot holds no terms.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate over `(TermId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.inner.iter()
    }

    /// A full read-only view of the underlying vocabulary, for APIs that
    /// take `&Vocabulary`.
    pub fn as_vocabulary(&self) -> &Vocabulary {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("market");
        let b = v.intern("market");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_first_seen_order() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), TermId(0));
        assert_eq!(v.intern("b"), TermId(1));
        assert_eq!(v.intern("a"), TermId(0));
        assert_eq!(v.intern("c"), TermId(2));
    }

    #[test]
    fn roundtrip() {
        let mut v = Vocabulary::new();
        let id = v.intern("jacques chirac");
        assert_eq!(v.term(id), "jacques chirac");
        assert_eq!(v.get("jacques chirac"), Some(id));
        assert_eq!(v.get("unseen"), None);
    }

    #[test]
    fn try_term_out_of_range() {
        let v = Vocabulary::new();
        assert_eq!(v.try_term(TermId(5)), None);
    }

    #[test]
    fn iter_in_order() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let all: Vec<_> = v.iter().map(|(i, s)| (i.0, s.to_string())).collect();
        assert_eq!(all, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn frozen_snapshot_detached_from_later_interns() {
        let mut v = Vocabulary::new();
        let x = v.intern("x");
        let frozen = v.freeze();
        let y = v.intern("y");
        assert_eq!(frozen.get("x"), Some(x));
        assert_eq!(frozen.get("y"), None, "frozen before y was interned");
        assert_eq!(frozen.try_term(y), None);
        assert_eq!(frozen.len(), 1);
        assert_eq!(v.len(), 2);
        // Shared ids keep their meaning.
        assert_eq!(frozen.term(x), v.term(x));
        // Clones share state.
        let c = frozen.clone();
        assert_eq!(c.len(), 1);
        assert_eq!(c.as_vocabulary().get("x"), Some(x));
    }
}
