//! The global arena-backed term interner.
//!
//! Every layer of the system — pipeline, index, shards, resource caches —
//! speaks [`Sym`]: a dense `u32` symbol handed out by an [`Interner`] in
//! first-seen order. Term text lives once, in a single contiguous byte
//! arena, and a deterministic open-addressing table maps text → symbol,
//! so interning never allocates per term on the hit path and symbol
//! assignment depends only on the sequence of `intern` calls (no
//! `RandomState`, no pointer identity).
//!
//! Three companion types round out the substrate:
//!
//! * [`FrozenInterner`] — an immutable, cheaply clonable snapshot for
//!   lock-free read paths (mirroring `FrozenVocabulary`),
//! * [`SymTable`] — a dense symbol-indexed map replacing `HashMap<String,
//!   T>` counting tables; iteration is in symbol order by construction,
//!   so it *removes* unordered-map-iteration hazards instead of
//!   sanctioning them,
//! * [`InternStats`] — hit/miss/len counters surfaced as `intern.{hits,
//!   misses,len}` observability metrics by the index layers.
//!
//! Symbols are append-only: once assigned, a symbol's meaning never
//! changes, which is what lets frozen snapshots, shard remap tables
//! ([`Interner::extend_remap`]), and dense frequency vectors all share
//! ids without coordination.

use std::sync::Arc;

/// A dense symbol for an interned term. Valid only with respect to the
/// [`Interner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The symbol as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interner observability counters: how often `intern` was answered from
/// the table (`hits`) vs. appended a new symbol (`misses`), and how many
/// distinct symbols exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InternStats {
    /// `intern` calls answered by an existing symbol.
    pub hits: u64,
    /// `intern` calls that appended a new symbol.
    pub misses: u64,
    /// Distinct symbols interned so far.
    pub len: usize,
}

impl InternStats {
    /// Fraction of `intern` calls answered from the table (0.0 when
    /// unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// FNV-1a over the term bytes: deterministic across processes and runs,
/// unlike `std`'s seeded `RandomState`.
#[inline]
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An append-only arena interner mapping term strings to dense [`Sym`]s.
///
/// ```
/// use facet_textkit::Interner;
/// let mut interner = Interner::new();
/// let s = interner.intern("political leaders");
/// assert_eq!(interner.intern("political leaders"), s);
/// assert_eq!(interner.resolve(s), "political leaders");
/// ```
///
/// All term text is stored once in a single byte arena (`String`), with a
/// span table per symbol — no per-term `String` allocations, and resolving
/// a symbol is two array reads. The hash table uses open addressing with
/// linear probing over FNV-1a, so the structure is fully deterministic:
/// the same sequence of `intern` calls always produces the same symbols
/// and the same memory layout.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Concatenated UTF-8 text of every interned term.
    arena: String,
    /// Byte range of each symbol's text within `arena`.
    spans: Vec<(u32, u32)>,
    /// Open-addressing table: `0` is empty, otherwise `sym.0 + 1`.
    table: Vec<u32>,
    hits: u64,
    misses: u64,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner with capacity for about `n` terms.
    pub fn with_capacity(n: usize) -> Self {
        let table_len = (n * 8 / 7 + 1).next_power_of_two().max(16);
        Self {
            arena: String::new(),
            spans: Vec::with_capacity(n),
            table: vec![0; table_len],
            hits: 0,
            misses: 0,
        }
    }

    /// Probe the table for `term` under `hash`.
    fn lookup_hashed(&self, term: &str, hash: u64) -> Option<Sym> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut idx = (hash as usize) & mask;
        loop {
            let slot = self.table[idx];
            if slot == 0 {
                return None;
            }
            let sym = Sym(slot - 1);
            if self.span_text(sym) == term {
                return Some(sym);
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Insert `sym` (already appended to the arena) into the table.
    fn insert_hashed(table: &mut [u32], sym: Sym, hash: u64) {
        let mask = table.len() - 1;
        let mut idx = (hash as usize) & mask;
        while table[idx] != 0 {
            idx = (idx + 1) & mask;
        }
        table[idx] = sym.0 + 1;
    }

    /// Grow the table when load would exceed 7/8 and rehash every symbol.
    fn grow_if_needed(&mut self) {
        if (self.spans.len() + 1) * 8 <= self.table.len() * 7 {
            return;
        }
        let new_len = (self.table.len() * 2).max(16);
        let mut table = vec![0u32; new_len];
        for i in 0..self.spans.len() {
            let sym = Sym(i as u32);
            Self::insert_hashed(&mut table, sym, fnv1a(self.span_text(sym)));
        }
        self.table = table;
    }

    #[inline]
    fn span_text(&self, sym: Sym) -> &str {
        let (start, end) = self.spans[sym.index()];
        &self.arena[start as usize..end as usize]
    }

    /// Intern `term`, returning its symbol (allocating a new one if
    /// unseen). Counts a hit or miss in [`Interner::stats`].
    pub fn intern(&mut self, term: &str) -> Sym {
        let hash = fnv1a(term);
        if let Some(sym) = self.lookup_hashed(term, hash) {
            self.hits += 1;
            return sym;
        }
        self.misses += 1;
        self.grow_if_needed();
        // lint:allow(panic, reason="u32 symbol-space exhaustion (>4B distinct terms) is unrecoverable and unreachable for supported corpora")
        let id = u32::try_from(self.spans.len()).expect("interner symbol space exhausted");
        // lint:allow(panic, reason="4 GiB of distinct term text is unreachable for supported corpora and unrecoverable if hit")
        let start = u32::try_from(self.arena.len()).expect("interner arena exhausted");
        self.arena.push_str(term);
        // lint:allow(panic, reason="4 GiB of distinct term text is unreachable for supported corpora and unrecoverable if hit")
        let end = u32::try_from(self.arena.len()).expect("interner arena exhausted");
        self.spans.push((start, end));
        let sym = Sym(id);
        Self::insert_hashed(&mut self.table, sym, hash);
        sym
    }

    /// Look up an already-interned term without allocating or counting.
    pub fn get(&self, term: &str) -> Option<Sym> {
        self.lookup_hashed(term, fnv1a(term))
    }

    /// Resolve a symbol back to its term text.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.span_text(sym)
    }

    /// Resolve a symbol if it is valid for this interner.
    pub fn try_resolve(&self, sym: Sym) -> Option<&str> {
        if sym.index() < self.spans.len() {
            Some(self.span_text(sym))
        } else {
            None
        }
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterate over `(Sym, &str)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        (0..self.spans.len()).map(|i| {
            let sym = Sym(i as u32);
            (sym, self.span_text(sym))
        })
    }

    /// Hit/miss/len counters so far.
    pub fn stats(&self) -> InternStats {
        InternStats {
            hits: self.hits,
            misses: self.misses,
            len: self.spans.len(),
        }
    }

    /// Merge `other`'s symbols into `self`, extending the `remap` table so
    /// `remap[s.index()]` is the symbol in `self` whose text equals
    /// `other.resolve(s)`.
    ///
    /// Only the suffix `remap.len()..other.len()` is processed — symbols
    /// already remapped by an earlier call keep their entries untouched —
    /// so repeated merges of a growing source interner do O(new terms)
    /// work, not O(all terms). This is the shard-merge primitive: each
    /// shard keeps a local interner plus its `remap` into the merged one,
    /// and every merge replays only the shard's newly-interned suffix.
    pub fn extend_remap(&mut self, other: &Interner, remap: &mut Vec<Sym>) {
        debug_assert!(remap.len() <= other.len(), "remap longer than source");
        for i in remap.len()..other.len() {
            let sym = self.intern(other.span_text(Sym(i as u32)));
            remap.push(sym);
        }
    }

    /// Take an immutable, shareable snapshot of the current state.
    ///
    /// The frozen view is detached: later `intern` calls on `self` do not
    /// affect it, and every clone of the returned [`FrozenInterner`]
    /// shares one allocation.
    pub fn freeze(&self) -> FrozenInterner {
        FrozenInterner {
            inner: Arc::new(self.clone()),
        }
    }

    /// The backing text arena (serialization surface; pair with
    /// [`Interner::spans`] and restore via [`Interner::from_parts`]).
    pub fn arena(&self) -> &str {
        &self.arena
    }

    /// The per-symbol byte ranges into [`Interner::arena`], in symbol
    /// order.
    pub fn spans(&self) -> &[(u32, u32)] {
        &self.spans
    }

    /// Rebuild an interner from a serialized `(arena, spans)` pair plus
    /// the hit/miss counters, rehashing every span to reconstruct the
    /// probe table exactly as progressive interning would have.
    ///
    /// Returns `None` when the parts are inconsistent: a span out of
    /// bounds, inverted, off a UTF-8 boundary, or two spans resolving to
    /// the same text (symbols are distinct terms by construction).
    pub fn from_parts(
        arena: String,
        spans: Vec<(u32, u32)>,
        hits: u64,
        misses: u64,
    ) -> Option<Self> {
        for &(start, end) in &spans {
            let (s, e) = (start as usize, end as usize);
            if s > e || e > arena.len() || !arena.is_char_boundary(s) || !arena.is_char_boundary(e)
            {
                return None;
            }
        }
        let text = |i: usize| -> &str {
            let (start, end) = spans[i];
            &arena[start as usize..end as usize]
        };
        // Replay intern()'s growth sequence (double at 7/8 load, checked
        // before each insert) so the table size — and therefore future
        // growth points — matches a live interner that interned the same
        // terms in the same order.
        let mut table: Vec<u32> = Vec::new();
        for i in 0..spans.len() {
            if (i + 1) * 8 > table.len() * 7 {
                let mut grown = vec![0u32; (table.len() * 2).max(16)];
                for j in 0..i {
                    Self::insert_hashed(&mut grown, Sym(j as u32), fnv1a(text(j)));
                }
                table = grown;
            }
            let hash = fnv1a(text(i));
            let mask = table.len() - 1;
            let mut idx = (hash as usize) & mask;
            loop {
                let slot = table[idx];
                if slot == 0 {
                    break;
                }
                if text((slot - 1) as usize) == text(i) {
                    return None;
                }
                idx = (idx + 1) & mask;
            }
            table[idx] = i as u32 + 1;
        }
        Some(Self {
            arena,
            spans,
            table,
            hits,
            misses,
        })
    }
}

/// An immutable, cheaply-clonable snapshot of an [`Interner`].
///
/// Produced by [`Interner::freeze`]; exposes the read-only half of the
/// interner API. Symbols resolved against the frozen view are exactly the
/// symbols the source interner had assigned at freeze time (interning is
/// append-only, so symbols never change meaning — a frozen view simply
/// does not know about terms interned after it was taken).
#[derive(Debug, Clone)]
pub struct FrozenInterner {
    inner: Arc<Interner>,
}

impl Default for FrozenInterner {
    fn default() -> Self {
        Self {
            inner: Arc::new(Interner::default()),
        }
    }
}

impl FrozenInterner {
    /// Look up an interned term.
    pub fn get(&self, term: &str) -> Option<Sym> {
        self.inner.get(term)
    }

    /// Resolve a symbol back to its term text.
    ///
    /// # Panics
    /// Panics if `sym` was interned after this snapshot was frozen (or
    /// belongs to a different interner).
    pub fn resolve(&self, sym: Sym) -> &str {
        self.inner.resolve(sym)
    }

    /// Resolve a symbol if it is valid for this snapshot.
    pub fn try_resolve(&self, sym: Sym) -> Option<&str> {
        self.inner.try_resolve(sym)
    }

    /// Number of symbols known to this snapshot.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if the snapshot holds no symbols.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate over `(Sym, &str)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.inner.iter()
    }

    /// Counters at freeze time.
    pub fn stats(&self) -> InternStats {
        self.inner.stats()
    }

    /// A full read-only view of the underlying interner, for APIs that
    /// take `&Interner`.
    pub fn as_interner(&self) -> &Interner {
        &self.inner
    }
}

/// A dense symbol-indexed map: the drop-in replacement for
/// `HashMap<String, T>` counting tables once keys are interned.
///
/// Storage is a plain `Vec<Option<T>>` indexed by [`Sym`], so lookups are
/// one bounds check and iteration replays in symbol (= first-interned)
/// order — deterministic by construction, with no sort step and no
/// unordered-map hazard.
#[derive(Debug, Clone, Default)]
pub struct SymTable<T> {
    slots: Vec<Option<T>>,
    filled: usize,
}

impl<T> SymTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            filled: 0,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// True if no entries are occupied.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// True if `sym` has an entry.
    pub fn contains(&self, sym: Sym) -> bool {
        matches!(self.slots.get(sym.index()), Some(Some(_)))
    }

    /// The entry for `sym`, if any.
    pub fn get(&self, sym: Sym) -> Option<&T> {
        self.slots.get(sym.index()).and_then(Option::as_ref)
    }

    /// Mutable entry for `sym`, if any.
    pub fn get_mut(&mut self, sym: Sym) -> Option<&mut T> {
        self.slots.get_mut(sym.index()).and_then(Option::as_mut)
    }

    /// Insert (or replace) the entry for `sym`, growing the table as
    /// needed. Returns the previous entry.
    pub fn insert(&mut self, sym: Sym, value: T) -> Option<T> {
        if sym.index() >= self.slots.len() {
            self.slots.resize_with(sym.index() + 1, || None);
        }
        let prev = self.slots[sym.index()].replace(value);
        if prev.is_none() {
            self.filled += 1;
        }
        prev
    }

    /// Entry for `sym`, inserting `T::default()` first if vacant.
    pub fn get_or_default(&mut self, sym: Sym) -> &mut T
    where
        T: Default,
    {
        if sym.index() >= self.slots.len() {
            self.slots.resize_with(sym.index() + 1, || None);
        }
        let slot = &mut self.slots[sym.index()];
        if slot.is_none() {
            *slot = Some(T::default());
            self.filled += 1;
        }
        // lint:allow(panic, reason="slot was just filled above; unwrap cannot fail")
        slot.as_mut().expect("slot just filled")
    }

    /// Iterate over `(Sym, &T)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|t| (Sym(i as u32), t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), Sym(0));
        assert_eq!(i.intern("b"), Sym(1));
        assert_eq!(i.intern("a"), Sym(0));
        assert_eq!(i.intern("c"), Sym(2));
        assert_eq!(i.len(), 3);
        assert_eq!(
            i.stats(),
            InternStats {
                hits: 1,
                misses: 3,
                len: 3
            }
        );
    }

    #[test]
    fn symbols_stable_across_appends() {
        // Symbol stability: a symbol assigned early keeps its meaning no
        // matter how many later appends grow (and rehash) the table.
        let mut i = Interner::new();
        let early: Vec<(String, Sym)> = (0..8)
            .map(|k| {
                let t = format!("early{k}");
                let s = i.intern(&t);
                (t, s)
            })
            .collect();
        for k in 0..5000 {
            i.intern(&format!("later term number {k}"));
        }
        for (t, s) in &early {
            assert_eq!(i.get(t), Some(*s));
            assert_eq!(i.resolve(*s), t.as_str());
        }
        assert_eq!(i.len(), 8 + 5000);
    }

    #[test]
    fn roundtrip_over_generated_corpus() {
        // Proptest-style round trip: for a few thousand generated strings
        // (deterministic LCG, varied lengths, shared prefixes to force
        // probe collisions), intern(resolve(s)) == s for every symbol and
        // get(text) agrees with the original assignment.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut i = Interner::new();
        let mut assigned: Vec<(Sym, String)> = Vec::new();
        for _ in 0..3000 {
            let words = 1 + (next() % 3) as usize;
            let t: Vec<String> = (0..words).map(|_| format!("w{}", next() % 800)).collect();
            let t = t.join(" ");
            let s = i.intern(&t);
            assigned.push((s, t));
        }
        for (s, t) in &assigned {
            assert_eq!(i.resolve(*s), t.as_str());
            assert_eq!(i.get(t), Some(*s), "get must agree for {t:?}");
            // The round trip: re-interning resolved text is a hit on the
            // same symbol.
            let mut clone = i.clone();
            assert_eq!(clone.intern(clone.resolve(*s).to_string().as_str()), *s);
        }
        let stats = i.stats();
        assert_eq!(stats.misses as usize, i.len());
        assert_eq!(stats.hits + stats.misses, 3000);
    }

    #[test]
    fn empty_and_unseen_lookups() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.get("anything"), None);
        assert_eq!(i.try_resolve(Sym(0)), None);
    }

    #[test]
    fn iter_in_symbol_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let all: Vec<_> = i.iter().map(|(s, t)| (s.0, t.to_string())).collect();
        assert_eq!(all, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn frozen_snapshot_isolated_under_concurrent_reads() {
        // Snapshot isolation: readers on a frozen view observe exactly
        // the freeze-time state while the source interner keeps growing
        // on another thread's schedule.
        let mut i = Interner::new();
        let base: Vec<Sym> = (0..100).map(|k| i.intern(&format!("base{k}"))).collect();
        let frozen = i.freeze();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let frozen = frozen.clone();
                let base = &base;
                scope.spawn(move || {
                    for _ in 0..200 {
                        assert_eq!(frozen.len(), 100);
                        for (k, s) in base.iter().enumerate() {
                            assert_eq!(frozen.resolve(*s), format!("base{k}"));
                        }
                        assert_eq!(frozen.get("later0"), None);
                    }
                });
            }
            // Writer: grow the source underneath the readers.
            scope.spawn(|| {
                for k in 0..500 {
                    i.intern(&format!("later{k}"));
                }
            });
        });
        assert_eq!(frozen.len(), 100, "frozen view never observes growth");
    }

    #[test]
    fn extend_remap_empty_duplicate_disjoint() {
        // Empty source: no-op.
        let mut merged = Interner::new();
        let mut remap = Vec::new();
        merged.extend_remap(&Interner::new(), &mut remap);
        assert!(remap.is_empty());
        assert!(merged.is_empty());

        // Duplicate vocabularies: remap collapses onto existing symbols.
        let mut a = Interner::new();
        a.intern("x");
        a.intern("y");
        merged.intern("x");
        merged.intern("y");
        merged.extend_remap(&a, &mut remap);
        assert_eq!(remap, vec![Sym(0), Sym(1)]);
        assert_eq!(merged.len(), 2);

        // Disjoint suffix: only the new tail is processed; earlier remap
        // entries are untouched, new symbols appended in source order.
        let mut b = a.clone();
        b.intern("z");
        b.intern("w");
        merged.extend_remap(&b, &mut remap);
        assert_eq!(remap, vec![Sym(0), Sym(1), Sym(2), Sym(3)]);
        assert_eq!(merged.resolve(Sym(2)), "z");
        assert_eq!(merged.resolve(Sym(3)), "w");
        assert_eq!(merged.len(), 4);

        // Identity: every remapped symbol resolves to the source text.
        for (s, t) in b.iter() {
            assert_eq!(merged.resolve(remap[s.index()]), t);
        }
    }

    #[test]
    fn extend_remap_interleaved_shards() {
        // Two shards with overlapping vocabularies merged alternately:
        // the merged interner assigns symbols in replay order and both
        // remaps stay consistent.
        let mut s0 = Interner::new();
        let mut s1 = Interner::new();
        let mut merged = Interner::new();
        let (mut r0, mut r1) = (Vec::new(), Vec::new());
        s0.intern("alpha");
        s0.intern("shared");
        merged.extend_remap(&s0, &mut r0);
        s1.intern("shared");
        s1.intern("beta");
        merged.extend_remap(&s1, &mut r1);
        assert_eq!(merged.len(), 3);
        assert_eq!(
            merged.resolve(r0[s0.get("shared").unwrap().index()]),
            "shared"
        );
        assert_eq!(r0[1], r1[0], "shared term maps to one merged symbol");
    }

    #[test]
    fn sym_table_dense_ops() {
        let mut t: SymTable<u64> = SymTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(Sym(3), 7), None);
        assert_eq!(t.insert(Sym(3), 9), Some(7));
        *t.get_or_default(Sym(1)) += 5;
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(Sym(3)), Some(&9));
        assert_eq!(t.get(Sym(0)), None);
        assert!(t.contains(Sym(1)));
        // Iteration is in symbol order, not insertion order.
        let all: Vec<_> = t.iter().map(|(s, &v)| (s.0, v)).collect();
        assert_eq!(all, vec![(1, 5), (3, 9)]);
    }

    #[test]
    fn stats_hit_rate() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("a");
        i.intern("a");
        i.intern("b");
        let s = i.stats();
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(InternStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn from_parts_round_trips_exactly() {
        let mut live = Interner::new();
        // Enough terms to force several table growths.
        for i in 0..100 {
            live.intern(&format!("term {i}"));
        }
        live.intern("term 5");
        let restored = Interner::from_parts(
            live.arena().to_string(),
            live.spans().to_vec(),
            live.stats().hits,
            live.stats().misses,
        )
        .expect("valid parts restore");
        assert_eq!(restored.stats(), live.stats());
        for (sym, term) in live.iter() {
            assert_eq!(restored.resolve(sym), term);
            assert_eq!(restored.get(term), Some(sym));
        }
        // The rebuilt probe table matches the live one's growth history,
        // so continued interning behaves identically.
        let mut a = live.clone();
        let mut b = restored;
        for i in 0..50 {
            assert_eq!(
                a.intern(&format!("late {i}")),
                b.intern(&format!("late {i}"))
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn from_parts_rejects_inconsistent_parts() {
        // Span past the arena end.
        assert!(Interner::from_parts("ab".into(), vec![(0, 3)], 0, 0).is_none());
        // Inverted span.
        assert!(Interner::from_parts("ab".into(), vec![(2, 1)], 0, 0).is_none());
        // Span off a UTF-8 boundary.
        assert!(Interner::from_parts("é".into(), vec![(0, 1)], 0, 0).is_none());
        // Two symbols with identical text.
        assert!(Interner::from_parts("aa".into(), vec![(0, 1), (1, 2)], 0, 0).is_none());
        // A well-formed empty interner restores.
        assert!(Interner::from_parts(String::new(), Vec::new(), 0, 0).is_some());
    }
}
