//! Word and sentence tokenization.
//!
//! The tokenizer is deliberately simple and deterministic: it recognizes
//! word tokens (alphanumeric runs, allowing internal apostrophes and
//! hyphens, e.g. `O'Brien`, `vice-president`), numbers, and punctuation.
//! Sentence splitting is rule-based on terminal punctuation followed by
//! whitespace and an uppercase letter or end of text.

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Alphabetic word (possibly with internal `'` or `-`).
    Word,
    /// A run of ASCII digits, possibly with internal `.`/`,` (e.g. `1,000`).
    Number,
    /// Anything else that is not whitespace: punctuation, symbols.
    Punct,
}

/// A token with its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token text, borrowed from the input.
    pub text: &'a str,
    /// Byte offset of the first byte of the token in the input.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// Lexical class.
    pub kind: TokenKind,
}

impl<'a> Token<'a> {
    /// True if the token starts with an uppercase letter.
    pub fn is_capitalized(&self) -> bool {
        self.text.chars().next().is_some_and(|c| c.is_uppercase())
    }
}

fn is_word_char(c: char) -> bool {
    c.is_alphabetic()
}

fn is_word_joiner(c: char) -> bool {
    c == '\'' || c == '-'
}

fn is_number_joiner(c: char) -> bool {
    c == '.' || c == ','
}

/// Tokenize `text` into [`Token`]s. Whitespace is skipped; every other
/// character belongs to exactly one token. The concatenation of all token
/// texts plus the skipped whitespace reconstructs the input (a property we
/// verify with proptest).
pub fn tokens(text: &str) -> Vec<Token<'_>> {
    let mut out = Vec::new();
    let bytes_len = text.len();
    let mut iter = text.char_indices().peekable();
    while let Some(&(start, c)) = iter.peek() {
        if c.is_whitespace() {
            iter.next();
            continue;
        }
        if is_word_char(c) {
            // Word: letters, with single joiners between letters.
            let mut end = start + c.len_utf8();
            iter.next();
            while let Some(&(i, ch)) = iter.peek() {
                if is_word_char(ch) {
                    end = i + ch.len_utf8();
                    iter.next();
                } else if is_word_joiner(ch) {
                    // Only join if followed by another letter.
                    let mut ahead = iter.clone();
                    ahead.next();
                    if let Some(&(j, ch2)) = ahead.peek() {
                        if is_word_char(ch2) {
                            end = j + ch2.len_utf8();
                            iter.next();
                            iter.next();
                            continue;
                        }
                    }
                    break;
                } else {
                    break;
                }
            }
            out.push(Token {
                text: &text[start..end],
                start,
                end,
                kind: TokenKind::Word,
            });
        } else if c.is_ascii_digit() {
            let mut end = start + 1;
            iter.next();
            while let Some(&(i, ch)) = iter.peek() {
                if ch.is_ascii_digit() {
                    end = i + 1;
                    iter.next();
                } else if is_number_joiner(ch) {
                    let mut ahead = iter.clone();
                    ahead.next();
                    if let Some(&(j, ch2)) = ahead.peek() {
                        if ch2.is_ascii_digit() {
                            end = j + 1;
                            iter.next();
                            iter.next();
                            continue;
                        }
                    }
                    break;
                } else {
                    break;
                }
            }
            out.push(Token {
                text: &text[start..end],
                start,
                end,
                kind: TokenKind::Number,
            });
        } else {
            let end = start + c.len_utf8();
            iter.next();
            out.push(Token {
                text: &text[start..end],
                start,
                end,
                kind: TokenKind::Punct,
            });
        }
        debug_assert!(out.last().is_none_or(|t| t.end <= bytes_len));
    }
    out
}

/// Split `text` into sentences. A sentence ends at `.`, `!` or `?` that is
/// followed by whitespace and (an uppercase letter, a quote, or end of
/// input). Returns byte-range slices of the original text, trimmed.
pub fn sentences(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut sent_start = 0usize;
    let chars = text.char_indices().peekable();
    for (i, c) in chars {
        if c == '.' || c == '!' || c == '?' {
            // Look ahead: whitespace then uppercase/quote/end.
            let rest = &text[i + c.len_utf8()..];
            let mut rc = rest.chars();
            match rc.next() {
                None => {
                    // end of text — close below
                }
                Some(w) if w.is_whitespace() => {
                    let next_non_ws = rest.chars().find(|ch| !ch.is_whitespace());
                    match next_non_ws {
                        None => {}
                        Some(n) if n.is_uppercase() || n == '"' || n == '\u{201C}' => {}
                        Some(_) => continue,
                    }
                }
                Some(_) => continue,
            }
            let end = i + c.len_utf8();
            let s = text[sent_start..end].trim();
            if !s.is_empty() {
                out.push(s);
            }
            sent_start = end;
        }
    }
    let tail = text[sent_start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_and_numbers() {
        let toks = tokens("The G8 summit cost 1,000 dollars.");
        let texts: Vec<_> = toks.iter().map(|t| t.text).collect();
        assert_eq!(
            texts,
            vec!["The", "G", "8", "summit", "cost", "1,000", "dollars", "."]
        );
        assert_eq!(toks[5].kind, TokenKind::Number);
        assert_eq!(toks[7].kind, TokenKind::Punct);
    }

    #[test]
    fn hyphen_and_apostrophe_words() {
        let toks = tokens("O'Brien met the vice-president.");
        let texts: Vec<_> = toks.iter().map(|t| t.text).collect();
        assert_eq!(texts, vec!["O'Brien", "met", "the", "vice-president", "."]);
    }

    #[test]
    fn trailing_joiner_not_attached() {
        let toks = tokens("well- said");
        let texts: Vec<_> = toks.iter().map(|t| t.text).collect();
        assert_eq!(texts, vec!["well", "-", "said"]);
    }

    #[test]
    fn capitalization_flag() {
        let toks = tokens("Paris is big");
        assert!(toks[0].is_capitalized());
        assert!(!toks[1].is_capitalized());
    }

    #[test]
    fn spans_are_correct() {
        let text = "Jacques Chirac, 2005.";
        for t in tokens(text) {
            assert_eq!(&text[t.start..t.end], t.text);
        }
    }

    #[test]
    fn sentence_split_basic() {
        let s = sentences("The summit ended. Leaders left early! Did they meet?");
        assert_eq!(
            s,
            vec!["The summit ended.", "Leaders left early!", "Did they meet?"]
        );
    }

    #[test]
    fn sentence_abbreviation_not_split() {
        // Lowercase after period -> not a sentence boundary.
        let s = sentences("The u.s. economy grew. It boomed.");
        assert_eq!(s, vec!["The u.s. economy grew.", "It boomed."]);
    }

    #[test]
    fn sentence_no_terminal() {
        let s = sentences("no terminal punctuation here");
        assert_eq!(s, vec!["no terminal punctuation here"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokens("").is_empty());
        assert!(sentences("").is_empty());
        assert!(sentences("   ").is_empty());
    }

    #[test]
    fn unicode_words() {
        let toks = tokens("Café français");
        let texts: Vec<_> = toks.iter().map(|t| t.text).collect();
        assert_eq!(texts, vec!["Café", "français"]);
    }
}
