//! English stopword list.
//!
//! The facet-term selection step (Section IV-C of the paper) must not
//! propose function words as facets; the extractors and the comparative
//! analysis both filter through this list. The list is the classic
//! SMART-derived core set plus contractions common in news text.

use std::collections::HashSet;
use std::sync::OnceLock;

static STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren't",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "can't",
    "cannot",
    "could",
    "couldn't",
    "did",
    "didn't",
    "do",
    "does",
    "doesn't",
    "doing",
    "don't",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn't",
    "has",
    "hasn't",
    "have",
    "haven't",
    "having",
    "he",
    "he'd",
    "he'll",
    "he's",
    "her",
    "here",
    "here's",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "how's",
    "i",
    "i'd",
    "i'll",
    "i'm",
    "i've",
    "if",
    "in",
    "into",
    "is",
    "isn't",
    "it",
    "it's",
    "its",
    "itself",
    "let's",
    "me",
    "more",
    "most",
    "mustn't",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "shan't",
    "she",
    "she'd",
    "she'll",
    "she's",
    "should",
    "shouldn't",
    "so",
    "some",
    "such",
    "than",
    "that",
    "that's",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "there's",
    "these",
    "they",
    "they'd",
    "they'll",
    "they're",
    "they've",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "wasn't",
    "we",
    "we'd",
    "we'll",
    "we're",
    "we've",
    "were",
    "weren't",
    "what",
    "what's",
    "when",
    "when's",
    "where",
    "where's",
    "which",
    "while",
    "who",
    "who's",
    "whom",
    "why",
    "why's",
    "with",
    "won't",
    "would",
    "wouldn't",
    "you",
    "you'd",
    "you'll",
    "you're",
    "you've",
    "your",
    "yours",
    "yourself",
    "yourselves",
    "said",
    "say",
    "says",
    "mr",
    "mrs",
    "ms",
    "will",
    "one",
    "two",
    "may",
    "might",
    "must",
    "shall",
    "upon",
    "via",
];

fn set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Return true if `word` (assumed lowercase) is an English stopword.
pub fn is_stopword(word: &str) -> bool {
    set().contains(word)
}

/// Number of entries in the stopword list (for diagnostics).
pub fn stopword_count() -> usize {
    set().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words() {
        for w in ["the", "a", "of", "and", "is", "was", "said"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in ["market", "france", "summit", "leader", "war"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn case_sensitive_lowercase_contract() {
        // Callers must lowercase first; "The" is not in the set.
        assert!(!is_stopword("The"));
    }

    #[test]
    fn no_duplicates_in_list() {
        assert_eq!(
            stopword_count(),
            STOPWORDS.len(),
            "duplicate stopword entry"
        );
    }
}
