#![allow(clippy::unwrap_used)]

//! Property-based tests for the text substrate.

use facet_textkit::{ngrams, normalize_term, porter_stem, tokens, Vocabulary, Zipf};
use proptest::prelude::*;

proptest! {
    /// Token spans never overlap, are in order, and slice back to the text.
    #[test]
    fn token_spans_are_ordered_and_faithful(text in "\\PC{0,200}") {
        let toks = tokens(&text);
        let mut prev_end = 0;
        for t in &toks {
            prop_assert!(t.start >= prev_end);
            prop_assert!(t.end > t.start);
            prop_assert_eq!(&text[t.start..t.end], t.text);
            prev_end = t.end;
        }
    }

    /// Everything between tokens is whitespace: tokens cover all
    /// non-whitespace content.
    #[test]
    fn tokens_cover_non_whitespace(text in "[a-zA-Z0-9 .,!?'-]{0,200}") {
        let toks = tokens(&text);
        let mut covered = vec![false; text.len()];
        for t in &toks {
            for c in covered.iter_mut().take(t.end).skip(t.start) {
                *c = true;
            }
        }
        for (i, ch) in text.char_indices() {
            if !ch.is_whitespace() {
                prop_assert!(covered[i], "byte {} ({:?}) uncovered", i, ch);
            }
        }
    }

    /// Stemming never grows a word and always yields a non-empty result for
    /// non-empty lowercase input.
    #[test]
    fn stem_shrinks(word in "[a-z]{1,30}") {
        let s = porter_stem(&word);
        prop_assert!(s.len() <= word.len());
        prop_assert!(!s.is_empty());
    }

    /// Stemming is deterministic.
    #[test]
    fn stem_deterministic(word in "[a-z]{1,30}") {
        prop_assert_eq!(porter_stem(&word), porter_stem(&word));
    }

    /// normalize_term is idempotent.
    #[test]
    fn normalize_idempotent(raw in "\\PC{0,100}") {
        let once = normalize_term(&raw);
        prop_assert_eq!(normalize_term(&once), once);
    }

    /// Interning round-trips and is stable across repeats.
    #[test]
    fn vocabulary_roundtrip(words in proptest::collection::vec("[a-z ]{1,20}", 1..50)) {
        let mut v = Vocabulary::new();
        let ids: Vec<_> = words.iter().map(|w| v.intern(w)).collect();
        for (w, id) in words.iter().zip(&ids) {
            prop_assert_eq!(v.term(*id), w.as_str());
            prop_assert_eq!(v.intern(w), *id);
        }
        prop_assert!(v.len() <= words.len());
    }

    /// Zipf sampling always returns a valid rank and is monotone in u.
    #[test]
    fn zipf_sample_valid(n in 1usize..200, s in 0.1f64..3.0, u in 0.0f64..1.0) {
        let z = Zipf::new(n, s);
        let r = z.sample(u);
        prop_assert!(r < n);
        // Monotonicity: larger u never maps to a smaller rank.
        let r2 = z.sample((u + 0.1).min(0.999_999));
        prop_assert!(r2 >= r);
    }

    /// n-gram count matches the window arithmetic for punctuation-free text.
    #[test]
    fn ngram_count(words in proptest::collection::vec("[a-z]{1,8}", 0..20), n in 1usize..4) {
        let text = words.join(" ");
        let grams = ngrams(&text, n);
        let expected = words.len().saturating_sub(n - 1);
        let expected = if words.len() >= n { expected } else { 0 };
        prop_assert_eq!(grams.len(), expected);
    }
}
