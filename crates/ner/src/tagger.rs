//! The combined tagger: gazetteer matches first, rule-based spans fill
//! the gaps.

use crate::gazetteer::Gazetteer;
use crate::rules::rule_based_spans;
use facet_knowledge::{EntityId, EntityKind, World};

/// One tagged entity span.
#[derive(Debug, Clone, PartialEq)]
pub struct EntitySpan {
    /// The surface text of the span.
    pub text: String,
    /// Byte offsets in the source text.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
    /// The resolved entity, when the gazetteer recognized the span.
    pub entity: Option<EntityId>,
    /// Entity kind, when resolved.
    pub kind: Option<EntityKind>,
}

/// The named-entity tagger.
#[derive(Debug)]
pub struct NerTagger {
    gazetteer: Gazetteer,
}

impl NerTagger {
    /// Build the tagger from an explicit gazetteer.
    pub fn new(gazetteer: Gazetteer) -> Self {
        Self { gazetteer }
    }

    /// Build the tagger for a world (gazetteer coverage comes from the
    /// world's per-entity flags).
    pub fn from_world(world: &World) -> Self {
        Self::new(Gazetteer::from_world(world))
    }

    /// The underlying gazetteer.
    pub fn gazetteer(&self) -> &Gazetteer {
        &self.gazetteer
    }

    /// Tag `text`: gazetteer spans take precedence; rule-based spans are
    /// added where they do not overlap a gazetteer span. Spans are
    /// returned in document order.
    pub fn tag(&self, text: &str) -> Vec<EntitySpan> {
        let mut spans: Vec<EntitySpan> = self
            .gazetteer
            .scan(text)
            .into_iter()
            .map(|(t, s, e, id, kind)| EntitySpan {
                text: t.to_string(),
                start: s,
                end: e,
                entity: Some(id),
                kind: Some(kind),
            })
            .collect();
        for (t, s, e) in rule_based_spans(text) {
            let overlaps = spans.iter().any(|sp| s < sp.end && sp.start < e);
            if !overlaps {
                spans.push(EntitySpan {
                    text: t.to_string(),
                    start: s,
                    end: e,
                    entity: None,
                    kind: None,
                });
            }
        }
        spans.sort_by_key(|s| s.start);
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tagger() -> NerTagger {
        let mut g = Gazetteer::new();
        g.insert("Jacques Chirac", EntityId(0), EntityKind::Person);
        g.insert("France", EntityId(1), EntityKind::Location);
        NerTagger::new(g)
    }

    #[test]
    fn gazetteer_spans_resolved() {
        let t = tagger();
        let spans = t.tag("Jacques Chirac visited France.");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].entity, Some(EntityId(0)));
        assert_eq!(spans[1].kind, Some(EntityKind::Location));
    }

    #[test]
    fn rules_fill_unknown_entities() {
        let t = tagger();
        let spans = t.tag("He met Maria Dravenholt in France.");
        let texts: Vec<&str> = spans.iter().map(|s| s.text.as_str()).collect();
        assert!(texts.contains(&"Maria Dravenholt"));
        assert!(texts.contains(&"France"));
        let unknown = spans.iter().find(|s| s.text == "Maria Dravenholt").unwrap();
        assert_eq!(unknown.entity, None);
    }

    #[test]
    fn no_overlapping_spans() {
        let t = tagger();
        let spans = t.tag("President Jacques Chirac of France spoke.");
        for w in spans.windows(2) {
            assert!(w[0].end <= w[1].start, "overlap: {spans:?}");
        }
    }

    #[test]
    fn lowercase_text_yields_nothing() {
        let t = tagger();
        // Gazetteer is case-insensitive (realistic for news casing), but
        // rules need capitals; plain prose without entities yields nothing.
        let spans = t.tag("the weather was mild and quiet all week");
        assert!(spans.is_empty());
    }
}
