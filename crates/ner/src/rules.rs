//! Rule-based entity detection: capitalization patterns and
//! suffix/honorific cues, for entities the gazetteer does not know.

use facet_knowledge::names::HONORIFICS;
use facet_textkit::{tokens, Token, TokenKind};

/// Capitalized-but-common sentence starters that must not be absorbed
/// into an entity span ("Yesterday Jacques Chirac…").
const COMMON_STARTERS: &[&str] = &[
    "Yesterday",
    "Today",
    "Tomorrow",
    "Meanwhile",
    "However",
    "Still",
    "Earlier",
    "Later",
    "Analysts",
    "Officials",
    "Critics",
    "Supporters",
    "Commentators",
    "Observers",
    "Readers",
    "People",
    "Shares",
    "After",
    "Before",
    "During",
    "The",
    "A",
    "An",
    "In",
    "On",
    "At",
    "He",
    "She",
    "They",
    "It",
    "More",
    "Unrelatedly",
    "See",
    "Commentary",
];

/// Suffix words that mark an organization/corporation name.
const ORG_SUFFIX_WORDS: &[&str] = &[
    "Corp",
    "Systems",
    "Group",
    "Industries",
    "Holdings",
    "Labs",
    "Partners",
    "Energy",
    "Institute",
    "University",
    "Foundation",
    "Agency",
    "Council",
    "Commission",
    "Ministry",
];

/// Detect entity-like spans by rule:
///
/// * runs of two or more capitalized words ("Jacques Chirac"),
/// * honorific + capitalized word ("Senator Brask"),
/// * capitalized run ending in an organization suffix ("Zorit Systems"),
/// * single capitalized words that are *not* sentence-initial.
///
/// Returns `(text, start, end)` spans, non-overlapping, document order.
pub fn rule_based_spans(text: &str) -> Vec<(&str, usize, usize)> {
    let toks = tokens(text);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Word || !t.is_capitalized() {
            i += 1;
            continue;
        }
        // Common sentence starters never begin an entity span.
        if COMMON_STARTERS.contains(&t.text) {
            i += 1;
            continue;
        }
        // Gather the maximal capitalized run starting here.
        let mut j = i + 1;
        while j < toks.len()
            && toks[j].kind == TokenKind::Word
            && toks[j].is_capitalized()
            && toks[j].start == toks[j - 1].end + 1
        {
            j += 1;
        }
        let run_len = j - i;
        let sentence_initial = is_sentence_initial(&toks, i, text);
        let is_honorific = HONORIFICS.contains(&t.text);
        let ends_with_org_suffix = ORG_SUFFIX_WORDS.contains(&toks[j - 1].text);
        let accept = if run_len >= 2 {
            true
        } else {
            // Single capitalized word: accept only mid-sentence and
            // non-honorific (a bare "Senator" is a title, not an entity).
            !sentence_initial && !is_honorific
        };
        if accept {
            // Drop a leading honorific from multi-word runs: "Senator
            // Brask" → span covers both (the honorific disambiguates), but
            // plain "The" style words were never capitalized-matched here.
            let start = toks[i].start;
            let end = toks[j - 1].end;
            out.push((&text[start..end], start, end));
            let _ = ends_with_org_suffix; // suffix runs are already covered
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// True if token `i` starts a sentence: it is the first token, or the
/// previous token is sentence-ending punctuation.
fn is_sentence_initial(toks: &[Token<'_>], i: usize, _text: &str) -> bool {
    if i == 0 {
        return true;
    }
    let prev = &toks[i - 1];
    prev.kind == TokenKind::Punct && matches!(prev.text, "." | "!" | "?")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiword_runs_detected() {
        let spans = rule_based_spans("Yesterday Jacques Chirac spoke.");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0, "Jacques Chirac");
    }

    #[test]
    fn sentence_initial_singleton_skipped() {
        let spans = rule_based_spans("Analysts disagreed. Supporters cheered.");
        assert!(spans.is_empty(), "got {spans:?}");
    }

    #[test]
    fn mid_sentence_singleton_accepted() {
        let spans = rule_based_spans("The leaders met in Paris yesterday.");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0, "Paris");
    }

    #[test]
    fn honorific_plus_name() {
        let spans = rule_based_spans("He met Senator Brask at noon.");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0, "Senator Brask");
    }

    #[test]
    fn bare_honorific_skipped() {
        let spans = rule_based_spans("A bill reached the Senator yesterday, the Governor said no.");
        // "Senator" and "Governor" alone are titles, not entities.
        assert!(spans.is_empty(), "got {spans:?}");
    }

    #[test]
    fn org_suffix_runs() {
        let spans = rule_based_spans("Shares of Zorit Systems fell sharply.");
        assert_eq!(spans[0].0, "Zorit Systems");
    }

    #[test]
    fn sentence_initial_multiword_accepted() {
        let spans = rule_based_spans("Jacques Chirac spoke first.");
        assert_eq!(spans[0].0, "Jacques Chirac");
    }
}
