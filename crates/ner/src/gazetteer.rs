//! The entity gazetteer: longest-match dictionary of known surface forms.

use facet_knowledge::{EntityId, EntityKind, World};
use facet_textkit::{tokens, TokenKind};
use std::collections::HashMap;

/// A dictionary mapping normalized surface forms to entities.
#[derive(Debug, Default)]
pub struct Gazetteer {
    /// normalized surface form → entity.
    map: HashMap<String, (EntityId, EntityKind)>,
    /// first word → max form length in words.
    first_word_max: HashMap<String, usize>,
}

impl Gazetteer {
    /// Create an empty gazetteer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from the world: all surface forms of entities flagged
    /// `in_gazetteer`. Coverage gaps are the world's, not ours — the
    /// pipeline treats the tagger as a black box.
    pub fn from_world(world: &World) -> Self {
        let mut g = Self::new();
        for e in &world.entities {
            if !e.in_gazetteer {
                continue;
            }
            for form in e.surface_forms() {
                g.insert(form, e.id, e.kind);
            }
        }
        g
    }

    /// Insert a surface form. First insertion wins (ambiguous forms keep
    /// their first sense, a realistic dictionary behavior).
    pub fn insert(&mut self, form: &str, entity: EntityId, kind: EntityKind) {
        let words: Vec<String> = form
            .to_lowercase()
            .split_whitespace()
            .map(str::to_string)
            .collect();
        if words.is_empty() {
            return;
        }
        let key = words.join(" ");
        self.map.entry(key).or_insert((entity, kind));
        let e = self.first_word_max.entry(words[0].clone()).or_insert(0);
        *e = (*e).max(words.len());
    }

    /// Exact lookup of a normalized form.
    pub fn get(&self, form: &str) -> Option<(EntityId, EntityKind)> {
        self.map.get(&form.to_lowercase()).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the gazetteer is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Longest-match scan over `text`. Returns `(matched text, start byte,
    /// end byte, entity, kind)` tuples in document order, non-overlapping.
    pub fn scan<'t>(&self, text: &'t str) -> Vec<(&'t str, usize, usize, EntityId, EntityKind)> {
        let toks = tokens(text);
        // Indices of word tokens only.
        let word_idx: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == TokenKind::Word || t.kind == TokenKind::Number)
            .map(|(i, _)| i)
            .collect();
        let mut out = Vec::new();
        let mut wi = 0;
        while wi < word_idx.len() {
            let first = toks[word_idx[wi]].text.to_lowercase();
            let Some(&max_len) = self.first_word_max.get(&first) else {
                wi += 1;
                continue;
            };
            let upper = max_len.min(word_idx.len() - wi);
            let mut matched = false;
            for len in (1..=upper).rev() {
                // A form cannot cross punctuation: the word tokens must be
                // adjacent in the token stream (only whitespace between).
                if (0..len - 1).any(|k| word_idx[wi + k + 1] != word_idx[wi + k] + 1) {
                    continue;
                }
                let key: Vec<String> = (0..len)
                    .map(|k| toks[word_idx[wi + k]].text.to_lowercase())
                    .collect();
                let key = key.join(" ");
                if let Some(&(entity, kind)) = self.map.get(&key) {
                    let start = toks[word_idx[wi]].start;
                    let end = toks[word_idx[wi + len - 1]].end;
                    out.push((&text[start..end], start, end, entity, kind));
                    wi += len;
                    matched = true;
                    break;
                }
            }
            if !matched {
                wi += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaz() -> Gazetteer {
        let mut g = Gazetteer::new();
        g.insert("Jacques Chirac", EntityId(0), EntityKind::Person);
        g.insert("Chirac", EntityId(0), EntityKind::Person);
        g.insert("France", EntityId(1), EntityKind::Location);
        g
    }

    #[test]
    fn longest_match_preferred() {
        let g = gaz();
        let hits = g.scan("Jacques Chirac spoke for France.");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, "Jacques Chirac");
        assert_eq!(hits[1].0, "France");
    }

    #[test]
    fn variant_matches() {
        let g = gaz();
        let hits = g.scan("Chirac arrived yesterday");
        assert_eq!(hits[0].3, EntityId(0));
    }

    #[test]
    fn punctuation_blocks_multiword_match() {
        let g = gaz();
        let hits = g.scan("Jacques. Chirac spoke.");
        // "Jacques. Chirac" must not match as a two-word form; "Chirac"
        // alone still does.
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, "Chirac");
    }

    #[test]
    fn ambiguous_form_keeps_first_sense() {
        let mut g = gaz();
        g.insert("Chirac", EntityId(9), EntityKind::Location);
        assert_eq!(g.get("chirac"), Some((EntityId(0), EntityKind::Person)));
    }

    #[test]
    fn empty_text() {
        let g = gaz();
        assert!(g.scan("").is_empty());
    }
}
