#![warn(missing_docs)]

//! # facet-ner
//!
//! A named-entity tagger standing in for the LingPipe tagger the paper
//! uses as its "Named Entities" term extractor (Section IV-A).
//!
//! Two stages, mirroring a classic news-domain tagger:
//!
//! 1. **Gazetteer matching** — longest-match lookup of known entity
//!    surface forms (the gazetteer is built from the world with imperfect
//!    coverage, like any real dictionary);
//! 2. **Rule-based detection** — capitalized-token runs that are not
//!    sentence-initial singletons, honorific + capitalized patterns
//!    ("Senator Brask"), and corporate/organization suffixes
//!    ("... Systems", "... Institute").
//!
//! The tagger's characteristic *failure mode* matters as much as its
//! successes: it finds named entities only, never topical noun phrases.
//! That is what drives the near-zero recall of the WordNet resource when
//! paired with this extractor (paper Table II, NE × WordNet = 0.090).

pub mod gazetteer;
pub mod rules;
pub mod tagger;

pub use gazetteer::Gazetteer;
pub use rules::rule_based_spans;
pub use tagger::{EntitySpan, NerTagger};
