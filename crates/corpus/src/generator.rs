//! The synthetic news-archive generator.
//!
//! Articles are generated from the world's topics. Each article:
//!
//! 1. samples a topic (Zipfian in topic popularity, with per-day drift for
//!    multi-day datasets),
//! 2. mentions the topic's protagonist plus a sampled supporting cast,
//!    using randomly chosen surface forms ("Jacques Chirac" / "Chirac" /
//!    "President Chirac"),
//! 3. uses the topic's concept nouns,
//! 4. *rarely* leaks latent facet terms into the text (the
//!    [`GeneratorConfig::facet_leak_rate`]); the pilot study of Section III
//!    found ~65% of annotator-chosen facet terms absent from story text,
//!    and the leak rate is calibrated to reproduce that,
//! 5. pads with Zipfian background vocabulary through sentence templates.
//!
//! The generator returns both the documents and per-document gold
//! annotations ([`crate::gold::DocGold`]) for the evaluation harness.

use crate::db::{TermingOptions, TextDatabase};
use crate::document::{DocId, Document};
use crate::gold::DocGold;
use facet_knowledge::{EntityId, FacetNodeId, World};
use facet_textkit::{Vocabulary, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for corpus generation.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Seed for the article RNG (independent of the world seed).
    pub seed: u64,
    /// Number of documents to generate.
    pub n_docs: usize,
    /// Number of news sources (1 for NYT-style, 24 for Newsblaster-style).
    pub n_sources: u16,
    /// Number of days the dataset spans (1 for single-day, 30 for MNYT).
    pub n_days: u16,
    /// Probability that a latent facet term of the story is mentioned
    /// verbatim in the text.
    pub facet_leak_rate: f64,
    /// Sentence-count range per article.
    pub sentences: (usize, usize),
    /// Zipf exponent for background-word sampling.
    pub background_exponent: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED,
            n_docs: 1000,
            n_sources: 1,
            n_days: 1,
            facet_leak_rate: 0.22,
            sentences: (10, 22),
            background_exponent: 1.05,
        }
    }
}

/// A generated corpus: the text database plus per-document gold labels.
#[derive(Debug)]
pub struct GeneratedCorpus {
    /// The documents and their frequency statistics.
    pub db: TextDatabase,
    /// Per-document ground truth, parallel to `db.docs()`.
    pub gold: Vec<DocGold>,
}

/// Sentence templates. `{E}` = entity mention, `{C}` = concept noun,
/// `{B}` = background word. Slots may repeat.
const TEMPLATES: &[&str] = &[
    "{E} said on Tuesday that the {C} would reshape the {B} debate.",
    "Officials close to {E} described the {C} as a turning point for the {B}.",
    "The {C} drew sharp reactions after {E} addressed reporters about the {B}.",
    "Analysts said the {B} surrounding the {C} could weigh on {E} for months.",
    "{E} and {E} discussed the {C} during a closed meeting on the {B}.",
    "A spokesman for {E} declined to comment on the {C}, citing the ongoing {B}.",
    "Critics of {E} argued that the {C} ignored years of {B} warnings.",
    "The {B} report described how the {C} unfolded while {E} stayed silent.",
    "Supporters of {E} welcomed the {C}, calling the {B} concerns overstated.",
    "After weeks of {B}, {E} confirmed that the {C} was under review.",
    "People familiar with the {C} said {E} pressed for changes to the {B} plan.",
    "{E} faced new questions about the {C} as the {B} deepened.",
];

/// Templates used to leak a facet term into the text (the `{F}` slot).
/// Connective words are stopwords, so the leak adds the facet term and
/// nothing else to the countable vocabulary.
const LEAK_TEMPLATES: &[&str] = &[
    "All of this is about {F}.",
    "More on {F} here.",
    "And {F} again.",
    "It is, again, about {F}.",
    "This is what {F} is now.",
];

/// Generates articles about a world.
#[derive(Debug)]
pub struct CorpusGenerator<'w> {
    world: &'w World,
    config: GeneratorConfig,
}

impl<'w> CorpusGenerator<'w> {
    /// Create a generator over `world` with `config`.
    pub fn new(world: &'w World, config: GeneratorConfig) -> Self {
        Self { world, config }
    }

    /// Generate the corpus, interning document terms into `vocab`.
    pub fn generate(&self, vocab: &mut Vocabulary) -> GeneratedCorpus {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let topic_zipf = Zipf::new(self.world.topics.len(), 0.85);
        let bg_zipf = Zipf::new(self.world.background.len(), self.config.background_exponent);

        let mut docs = Vec::with_capacity(self.config.n_docs);
        let mut gold = Vec::with_capacity(self.config.n_docs);

        for di in 0..self.config.n_docs {
            let source = (di as u16) % self.config.n_sources.max(1);
            let day = if self.config.n_days <= 1 {
                0
            } else {
                // Spread documents over days uniformly.
                ((di * self.config.n_days as usize) / self.config.n_docs) as u16
            };
            let (doc, g) =
                self.generate_article(di as u32, source, day, &topic_zipf, &bg_zipf, &mut rng);
            docs.push(doc);
            gold.push(g);
        }

        let db = TextDatabase::build(docs, vocab, TermingOptions::default());
        GeneratedCorpus { db, gold }
    }

    /// Sample a topic id with per-day drift: each day boosts a rotating
    /// subset of topics so multi-day datasets cover more of the world.
    fn sample_topic(&self, day: u16, zipf: &Zipf, rng: &mut StdRng) -> usize {
        let n = self.world.topics.len();
        let base = zipf.sample(rng.gen::<f64>());
        if self.config.n_days <= 1 {
            return base;
        }
        // With probability 0.35, pick from the day's "active window".
        if rng.gen_bool(0.35) {
            let window = (n / self.config.n_days as usize).max(1);
            let start = (day as usize * window) % n;
            (start + rng.gen_range(0..window)) % n
        } else {
            base
        }
    }

    fn generate_article(
        &self,
        id: u32,
        source: u16,
        day: u16,
        topic_zipf: &Zipf,
        bg_zipf: &Zipf,
        rng: &mut StdRng,
    ) -> (Document, DocGold) {
        let w = self.world;
        let topic = &w.topics[self.sample_topic(day, topic_zipf, rng)];

        // --- choose the cast -------------------------------------------------
        let mut entities: Vec<EntityId> = vec![topic.entities[0]];
        for &e in topic.entities.iter().skip(1) {
            if rng.gen_bool(0.6) {
                entities.push(e);
            }
        }
        // Drive-by mentions of unrelated entities (adds realistic noise).
        for _ in 0..rng.gen_range(0..=2) {
            let e = EntityId(rng.gen_range(0..w.entities.len() as u32));
            entities.push(e);
        }
        entities.dedup();

        let mut concepts = Vec::new();
        for &c in &topic.concepts {
            if rng.gen_bool(0.7) {
                concepts.push(c);
            }
        }
        for _ in 0..rng.gen_range(1..=3) {
            concepts.push(facet_knowledge::ConceptId(
                rng.gen_range(0..w.concepts.len() as u32),
            ));
        }
        concepts.sort();
        concepts.dedup();

        // --- latent facets ----------------------------------------------------
        let mut facets: Vec<FacetNodeId> = Vec::new();
        for &e in &entities {
            facets.extend(w.entity_facet_closure(e));
        }
        for &c in &concepts {
            let leaf = w.concept(c).facet;
            facets.extend(w.ontology.path(leaf));
        }
        facets.extend(w.ontology.path(topic.facets[0]));
        facets.sort();
        facets.dedup();

        // --- render text -------------------------------------------------------
        // A story picks one surface form per entity and sticks to it
        // (house style): the per-document choice is what lets variant-only
        // stories exist, which the Wikipedia Synonyms resource later
        // consolidates onto canonical names.
        let mut chosen_form: std::collections::HashMap<EntityId, String> =
            std::collections::HashMap::new();
        for &e in &entities {
            let ent = w.entity(e);
            let form = if let Some(alt) = &ent.alt_name {
                let roll: f64 = rng.gen();
                if roll < 0.45 {
                    alt.clone()
                } else if roll < 0.55 && !ent.variants.is_empty() {
                    ent.variants[rng.gen_range(0..ent.variants.len())].clone()
                } else {
                    ent.name.clone()
                }
            } else if ent.variants.is_empty() || rng.gen_bool(0.5) {
                ent.name.clone()
            } else {
                ent.variants[rng.gen_range(0..ent.variants.len())].clone()
            };
            chosen_form.insert(e, form);
        }
        let mention = |_rng: &mut StdRng, e: EntityId| -> String {
            chosen_form
                .get(&e)
                .cloned()
                .unwrap_or_else(|| w.entity(e).name.clone())
        };
        let bg = |rng: &mut StdRng| -> &str {
            let i = bg_zipf.sample(rng.gen::<f64>());
            &w.background[i]
        };
        let concept_word = |rng: &mut StdRng, concepts: &[facet_knowledge::ConceptId]| -> String {
            let c = concepts[rng.gen_range(0..concepts.len())];
            w.concept(c).noun.clone()
        };

        let n_sentences = rng.gen_range(self.config.sentences.0..=self.config.sentences.1);
        let mut body = String::new();
        for si in 0..n_sentences {
            // Rotate templates per source so multi-source corpora differ in
            // style without differing in substance.
            let t_idx = (rng.gen_range(0..TEMPLATES.len()) + source as usize) % TEMPLATES.len();
            let template = TEMPLATES[t_idx];
            let mut sentence = String::with_capacity(template.len() + 32);
            let mut rest = template;
            while let Some(pos) = rest.find('{') {
                sentence.push_str(&rest[..pos]);
                // A malformed template (unclosed brace, unknown slot) is
                // emitted literally rather than panicking: the built-in
                // TEMPLATES are all well-formed, so this path only matters
                // for future hand-edited template sets.
                let Some(close) = rest[pos..].find('}').map(|c| c + pos) else {
                    sentence.push_str(&rest[pos..]);
                    rest = "";
                    break;
                };
                let slot = &rest[pos + 1..close];
                match slot {
                    "E" => {
                        let i = rng.gen_range(0..entities.len());
                        sentence.push_str(&mention(rng, entities[i]));
                    }
                    "C" => sentence.push_str(&concept_word(rng, &concepts)),
                    "B" => sentence.push_str(bg(rng)),
                    other => {
                        sentence.push('{');
                        sentence.push_str(other);
                        sentence.push('}');
                    }
                }
                rest = &rest[close + 1..];
            }
            sentence.push_str(rest);
            if si > 0 {
                body.push(' ');
            }
            body.push_str(&sentence);
        }

        // --- facet leaks -------------------------------------------------------
        // Journalists occasionally write a general term out; at most a few
        // per story, so leaks season the text without flooding it.
        let mut leaked = Vec::new();
        let max_leaks = 7usize;
        for &f in &facets {
            if leaked.len() >= max_leaks {
                break;
            }
            if rng.gen_bool(self.config.facet_leak_rate) {
                let term = &w.ontology.node(f).term;
                let template = LEAK_TEMPLATES[rng.gen_range(0..LEAK_TEMPLATES.len())];
                body.push(' ');
                body.push_str(&template.replace("{F}", term));
                leaked.push(f);
            }
        }

        let title = format!(
            "{} and the {} {}",
            mention(rng, entities[0]),
            bg(rng),
            concept_word(rng, &concepts),
        );

        let doc = Document {
            id: DocId(id),
            source,
            day,
            title,
            text: body,
        };
        let g = DocGold {
            topic: topic.id,
            entities,
            concepts,
            facets,
            leaked_facets: leaked,
        };
        (doc, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facet_knowledge::WorldConfig;

    fn small_world() -> World {
        World::generate(WorldConfig {
            seed: 21,
            countries: 8,
            cities_per_country: 2,
            people: 30,
            corporations: 10,
            organizations: 6,
            events: 5,
            extra_concepts: 15,
            topics: 20,
            gazetteer_coverage: 0.9,
            wordnet_city_coverage: 0.5,
            background_words: 80,
        })
    }

    #[test]
    fn generates_requested_count() {
        let w = small_world();
        let mut vocab = Vocabulary::new();
        let corpus = CorpusGenerator::new(
            &w,
            GeneratorConfig {
                n_docs: 25,
                ..Default::default()
            },
        )
        .generate(&mut vocab);
        assert_eq!(corpus.db.len(), 25);
        assert_eq!(corpus.gold.len(), 25);
    }

    #[test]
    fn deterministic() {
        let w = small_world();
        let gen = |w: &World| {
            let mut vocab = Vocabulary::new();
            let c = CorpusGenerator::new(
                w,
                GeneratorConfig {
                    n_docs: 10,
                    ..Default::default()
                },
            )
            .generate(&mut vocab);
            c.db.docs()
                .iter()
                .map(|d| d.text.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(&w), gen(&w));
    }

    #[test]
    fn protagonist_always_mentioned() {
        let w = small_world();
        let mut vocab = Vocabulary::new();
        let corpus = CorpusGenerator::new(
            &w,
            GeneratorConfig {
                n_docs: 30,
                ..Default::default()
            },
        )
        .generate(&mut vocab);
        for (doc, gold) in corpus.db.docs().iter().zip(&corpus.gold) {
            let protagonist = w.topic(gold.topic).entities[0];
            assert_eq!(gold.entities[0], protagonist);
            // At least one surface form of some mentioned entity is in the
            // text (mentions are drawn from surface forms).
            let ent = w.entity(protagonist);
            let text = doc.full_text();
            let mentioned = ent.surface_forms().any(|f| text.contains(f));
            assert!(mentioned, "protagonist not found in text: {}", ent.name);
        }
    }

    #[test]
    fn facet_terms_mostly_absent_from_text() {
        let w = small_world();
        let mut vocab = Vocabulary::new();
        let corpus = CorpusGenerator::new(
            &w,
            GeneratorConfig {
                n_docs: 60,
                ..Default::default()
            },
        )
        .generate(&mut vocab);
        let mut present = 0usize;
        let mut total = 0usize;
        for (doc, gold) in corpus.db.docs().iter().zip(&corpus.gold) {
            let text = doc.full_text().to_lowercase();
            for &f in &gold.facets {
                total += 1;
                if text.contains(&w.ontology.node(f).term) {
                    present += 1;
                }
            }
        }
        let rate = present as f64 / total as f64;
        // The Section III phenomenon: well under half of latent facet terms
        // appear in text. (Location names pull the rate up because cities
        // and countries are mentioned as entities.)
        assert!(rate < 0.55, "facet-term presence rate too high: {rate}");
        assert!(
            rate > 0.02,
            "facet-term presence rate implausibly low: {rate}"
        );
    }

    #[test]
    fn leaked_facets_do_appear() {
        let w = small_world();
        let mut vocab = Vocabulary::new();
        let corpus = CorpusGenerator::new(
            &w,
            GeneratorConfig {
                n_docs: 40,
                facet_leak_rate: 0.3,
                ..Default::default()
            },
        )
        .generate(&mut vocab);
        for (doc, gold) in corpus.db.docs().iter().zip(&corpus.gold) {
            let text = doc.full_text().to_lowercase();
            for &f in &gold.leaked_facets {
                assert!(
                    text.contains(&w.ontology.node(f).term),
                    "leaked facet {} missing",
                    w.ontology.node(f).term
                );
            }
        }
    }

    #[test]
    fn sources_and_days_assigned() {
        let w = small_world();
        let mut vocab = Vocabulary::new();
        let corpus = CorpusGenerator::new(
            &w,
            GeneratorConfig {
                n_docs: 48,
                n_sources: 24,
                n_days: 4,
                ..Default::default()
            },
        )
        .generate(&mut vocab);
        let sources: std::collections::HashSet<u16> =
            corpus.db.docs().iter().map(|d| d.source).collect();
        assert_eq!(sources.len(), 24);
        let days: std::collections::HashSet<u16> = corpus.db.docs().iter().map(|d| d.day).collect();
        assert_eq!(days.len(), 4);
    }
}
