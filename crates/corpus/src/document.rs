//! Documents: the unit of the text database.

/// Index of a document within a [`crate::db::TextDatabase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A news story. Contains only what a real crawler would have: source,
/// date, title, and body text. Ground-truth information about the story
/// lives in [`crate::gold::DocGold`], which only the evaluation harness
/// reads.
#[derive(Debug, Clone)]
pub struct Document {
    /// This document's id.
    pub id: DocId,
    /// News-source index (0 for single-source datasets; 0..24 for SNB).
    pub source: u16,
    /// Day index within the dataset's time span (0 for single-day sets).
    pub day: u16,
    /// Headline.
    pub title: String,
    /// Body text.
    pub text: String,
}

impl Document {
    /// Title and body concatenated, for whole-document processing.
    pub fn full_text(&self) -> String {
        let mut s = String::with_capacity(self.title.len() + 2 + self.text.len());
        s.push_str(&self.title);
        s.push_str(". ");
        s.push_str(&self.text);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_text_joins_title_and_body() {
        let d = Document {
            id: DocId(0),
            source: 0,
            day: 0,
            title: "Summit ends".into(),
            text: "Leaders met.".into(),
        };
        assert_eq!(d.full_text(), "Summit ends. Leaders met.");
    }
}
