#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # facet-corpus
//!
//! The text-database substrate and the synthetic news-archive generator.
//!
//! The paper evaluates on three datasets (Section V-A):
//!
//! * **SNYT** — 1,000 New York Times stories from a single day,
//! * **SNB** — 17,000 stories from one day of Newsblaster (24 sources),
//! * **MNYT** — 30,000 NYT stories covering one month.
//!
//! We cannot ship those corpora, so [`generator`] writes articles *about*
//! the synthetic world of `facet-knowledge`: each article is driven by a
//! topic, mentions entity surface forms and concept nouns, and — crucially
//! — only rarely mentions the facet terms themselves. The pilot-study
//! phenomenon of Section III (65% of human-chosen facet terms never appear
//! in the story text) is an explicit, measurable property of the generator
//! (see `facet-eval`'s pilot experiment).
//!
//! [`db`] holds the [`db::TextDatabase`]: documents plus the term/document
//! frequency statistics the selection algorithm of Section IV-C consumes.
//! [`recipes`] pins the SNYT/SNB/MNYT dataset configurations.

pub mod db;
pub mod document;
pub mod generator;
pub mod gold;
pub mod recipes;

pub use db::TextDatabase;
pub use document::{DocId, Document};
pub use generator::{CorpusGenerator, GeneratedCorpus, GeneratorConfig};
pub use gold::DocGold;
pub use recipes::{DatasetRecipe, RecipeKind};
