//! Ground-truth (gold) information about generated documents.
//!
//! Only the evaluation harness (`facet-eval`) and the simulated annotators
//! read this; the extraction pipeline under test sees document text only.

use facet_knowledge::{ConceptId, EntityId, FacetNodeId, TopicId};

/// Latent ground truth for one generated document.
#[derive(Debug, Clone)]
pub struct DocGold {
    /// The topic the story was generated from.
    pub topic: TopicId,
    /// Entities actually mentioned in the story text.
    pub entities: Vec<EntityId>,
    /// Concept nouns actually used in the story text.
    pub concepts: Vec<ConceptId>,
    /// The latent facet nodes characterizing the story: the union of the
    /// mentioned entities' facet closures, the used concepts' facets, and
    /// the topic theme. This is what an ideal annotator would draw from.
    pub facets: Vec<FacetNodeId>,
    /// The subset of `facets` whose terms were *explicitly leaked* into the
    /// story text (the generator mentions a facet term with small
    /// probability, reproducing the pilot study's ~35% presence rate).
    pub leaked_facets: Vec<FacetNodeId>,
}
