//! Dataset recipes pinning the paper's three evaluation corpora
//! (Section V-A) to concrete world + generator configurations.
//!
//! | Recipe | Paper dataset | Documents | Sources | Days |
//! |--------|---------------|-----------|---------|------|
//! | SNYT   | single day of The New York Times | 1,000 | 1 | 1 |
//! | SNB    | single day of Newsblaster        | 17,000 | 24 | 1 |
//! | MNYT   | one month of The New York Times  | 30,000 | 1 | 30 |
//!
//! All three share one world *shape* but use distinct seeds, so the
//! datasets are different corpora drawn from comparable worlds — like the
//! paper's three samples of real news. A `scale` factor lets tests and
//! quick runs shrink document counts while keeping proportions.

use crate::generator::{CorpusGenerator, GeneratedCorpus, GeneratorConfig};
use facet_knowledge::{World, WorldConfig};
use facet_textkit::Vocabulary;

/// Which of the paper's datasets to materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecipeKind {
    /// Single day of The New York Times: 1,000 stories, one source.
    Snyt,
    /// Single day of Newsblaster: 17,000 stories from 24 sources.
    Snb,
    /// A month of The New York Times: 30,000 stories over 30 days.
    Mnyt,
}

impl RecipeKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            RecipeKind::Snyt => "SNYT",
            RecipeKind::Snb => "SNB",
            RecipeKind::Mnyt => "MNYT",
        }
    }

    /// All recipes, in paper order.
    pub const ALL: [RecipeKind; 3] = [RecipeKind::Snyt, RecipeKind::Snb, RecipeKind::Mnyt];
}

/// A fully specified dataset: world config plus generator config.
#[derive(Debug, Clone)]
pub struct DatasetRecipe {
    /// Which dataset this is.
    pub kind: RecipeKind,
    /// The world configuration.
    pub world: WorldConfig,
    /// The corpus-generator configuration.
    pub generator: GeneratorConfig,
}

impl DatasetRecipe {
    /// The recipe for `kind` at full (paper) scale.
    pub fn new(kind: RecipeKind) -> Self {
        Self::scaled(kind, 1.0)
    }

    /// The recipe for `kind` with document count scaled by `scale`
    /// (clamped to at least 50 documents). World size is unscaled: the
    /// world is the "real world", the corpus is the sample.
    pub fn scaled(kind: RecipeKind, scale: f64) -> Self {
        let (n_docs, n_sources, n_days, world_seed, gen_seed, topics) = match kind {
            RecipeKind::Snyt => (1000, 1, 1, 0xA11CE, 0xB0B1, 400),
            RecipeKind::Snb => (17_000, 24, 1, 0xA11CF, 0xB0B2, 480),
            RecipeKind::Mnyt => (30_000, 1, 30, 0xA11D0, 0xB0B3, 460),
        };
        let n_docs = ((n_docs as f64 * scale) as usize).max(50);
        let world = WorldConfig {
            seed: world_seed,
            topics,
            ..WorldConfig::default()
        };
        let generator = GeneratorConfig {
            seed: gen_seed,
            n_docs,
            n_sources,
            n_days,
            ..GeneratorConfig::default()
        };
        Self {
            kind,
            world,
            generator,
        }
    }

    /// Generate the world for this recipe.
    pub fn build_world(&self) -> World {
        World::generate(self.world.clone())
    }

    /// Generate the corpus over an already-built world.
    pub fn build_corpus(&self, world: &World, vocab: &mut Vocabulary) -> GeneratedCorpus {
        CorpusGenerator::new(world, self.generator.clone()).generate(vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_counts() {
        assert_eq!(DatasetRecipe::new(RecipeKind::Snyt).generator.n_docs, 1000);
        assert_eq!(DatasetRecipe::new(RecipeKind::Snb).generator.n_docs, 17_000);
        assert_eq!(
            DatasetRecipe::new(RecipeKind::Mnyt).generator.n_docs,
            30_000
        );
    }

    #[test]
    fn snb_is_multi_source_mnyt_is_multi_day() {
        let snb = DatasetRecipe::new(RecipeKind::Snb);
        assert_eq!(snb.generator.n_sources, 24);
        assert_eq!(snb.generator.n_days, 1);
        let mnyt = DatasetRecipe::new(RecipeKind::Mnyt);
        assert_eq!(mnyt.generator.n_sources, 1);
        assert_eq!(mnyt.generator.n_days, 30);
    }

    #[test]
    fn scaling_clamps() {
        let r = DatasetRecipe::scaled(RecipeKind::Snyt, 0.001);
        assert_eq!(r.generator.n_docs, 50);
        let r = DatasetRecipe::scaled(RecipeKind::Snb, 0.01);
        assert_eq!(r.generator.n_docs, 170);
    }

    #[test]
    fn end_to_end_tiny_build() {
        let mut r = DatasetRecipe::scaled(RecipeKind::Snyt, 0.05);
        // Shrink the world for test speed.
        r.world.countries = 10;
        r.world.cities_per_country = 2;
        r.world.people = 40;
        r.world.corporations = 12;
        r.world.organizations = 8;
        r.world.events = 6;
        r.world.topics = 25;
        r.world.extra_concepts = 20;
        r.world.background_words = 100;
        let world = r.build_world();
        let mut vocab = Vocabulary::new();
        let corpus = r.build_corpus(&world, &mut vocab);
        assert_eq!(corpus.db.len(), 50);
        assert!(vocab.len() > 100);
    }

    #[test]
    fn distinct_recipes_have_distinct_seeds() {
        let seeds: std::collections::HashSet<u64> = RecipeKind::ALL
            .iter()
            .map(|&k| DatasetRecipe::new(k).world.seed)
            .collect();
        assert_eq!(seeds.len(), 3);
    }
}
