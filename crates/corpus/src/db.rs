//! The text database: documents plus term/document-frequency statistics.
//!
//! This is the `D` of the paper. Term extraction for frequency counting
//! uses lowercased word unigrams (minus stopwords and numbers) plus
//! stopword-free word bigrams, so that both single-word terms ("war") and
//! short phrases ("real estate") participate in the comparative frequency
//! analysis. Multi-word *context* terms added during expansion are interned
//! as single terms in the shared vocabulary, exactly like these bigrams.

use crate::document::{DocId, Document};
use facet_textkit::{is_stopword, normalize_term, tokens, TermId, TokenKind, Vocabulary};

/// Options controlling how documents are reduced to counted terms.
#[derive(Debug, Clone)]
pub struct TermingOptions {
    /// Include stopword-free bigrams as phrase terms.
    pub bigrams: bool,
    /// Minimum unigram length in characters.
    pub min_len: usize,
}

impl Default for TermingOptions {
    fn default() -> Self {
        Self {
            bigrams: true,
            min_len: 2,
        }
    }
}

/// A database of text documents with document-frequency statistics over a
/// shared vocabulary.
#[derive(Debug, Clone)]
pub struct TextDatabase {
    docs: Vec<Document>,
    /// Distinct term ids per document, sorted.
    doc_terms: Vec<Vec<TermId>>,
    /// Document frequency per term id (indexed by `TermId`); term ids
    /// interned after the build have frequency 0.
    df: Vec<u64>,
    options: TermingOptions,
}

/// Extract the distinct, normalized, counted terms of `text` into `out`
/// (term ids via `vocab`). Shared by the database build and the
/// contextualized-database build.
pub fn extract_terms(
    text: &str,
    options: &TermingOptions,
    vocab: &mut Vocabulary,
    out: &mut Vec<TermId>,
) {
    let toks = tokens(text);
    let mut prev_word: Option<String> = None;
    for t in &toks {
        if t.kind != TokenKind::Word {
            prev_word = None;
            continue;
        }
        let w = normalize_term(t.text);
        let stop = is_stopword(&w) || w.len() < options.min_len;
        if !stop {
            out.push(vocab.intern(&w));
        }
        if options.bigrams {
            if let Some(p) = &prev_word {
                if !stop {
                    let bigram = format!("{p} {w}");
                    out.push(vocab.intern(&bigram));
                }
            }
        }
        prev_word = if stop { None } else { Some(w) };
    }
    out.sort_unstable();
    out.dedup();
}

impl TextDatabase {
    /// Build a database from `docs`, interning terms into `vocab`.
    pub fn build(docs: Vec<Document>, vocab: &mut Vocabulary, options: TermingOptions) -> Self {
        let mut doc_terms = Vec::with_capacity(docs.len());
        let mut scratch = Vec::new();
        for d in &docs {
            scratch.clear();
            extract_terms(&d.full_text(), &options, vocab, &mut scratch);
            doc_terms.push(scratch.clone());
        }
        let mut df = vec![0u64; vocab.len()];
        for terms in &doc_terms {
            for t in terms {
                df[t.index()] += 1;
            }
        }
        Self {
            docs,
            doc_terms,
            df,
            options,
        }
    }

    /// Append `docs` to the database, interning their terms into `vocab`
    /// and delta-updating the document-frequency table. Returns the index
    /// range of the newly-added documents.
    ///
    /// Appending in batches is equivalent to building once from the
    /// concatenation: the df table ends up with identical counts, and the
    /// per-document term sets are extracted with the same
    /// [`TermingOptions`] the database was built with. Documents are
    /// expected to carry positional ids (`docs[i].id == DocId(len + i)`),
    /// matching the invariant `build` establishes.
    pub fn append(
        &mut self,
        docs: Vec<Document>,
        vocab: &mut Vocabulary,
    ) -> std::ops::Range<usize> {
        let start = self.docs.len();
        for (offset, d) in docs.iter().enumerate() {
            debug_assert_eq!(
                d.id.index(),
                start + offset,
                "appended documents must carry positional ids"
            );
        }
        self.append_detached(docs, vocab)
    }

    /// [`TextDatabase::append`] for documents whose `id` fields carry
    /// *external* ids — e.g. the global archive ids of a sharded index,
    /// where each shard stores every N-th document. The documents are
    /// stored at the next positional slots (so positional accessors like
    /// [`TextDatabase::doc_terms`] keep working shard-locally) while
    /// `Document::id` keeps the caller's id; the df table is
    /// delta-updated exactly as in [`TextDatabase::append`].
    pub fn append_detached(
        &mut self,
        docs: Vec<Document>,
        vocab: &mut Vocabulary,
    ) -> std::ops::Range<usize> {
        let start = self.docs.len();
        let mut scratch = Vec::new();
        for d in &docs {
            scratch.clear();
            extract_terms(&d.full_text(), &self.options, vocab, &mut scratch);
            self.doc_terms.push(scratch.clone());
        }
        self.df.resize(self.df.len().max(vocab.len()), 0);
        for terms in &self.doc_terms[start..] {
            for t in terms {
                self.df[t.index()] += 1;
            }
        }
        self.docs.extend(docs);
        start..self.docs.len()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True if the database holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The document with the given id.
    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id.index()]
    }

    /// All documents in id order.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// The distinct term ids of a document (sorted).
    pub fn doc_terms(&self, id: DocId) -> &[TermId] {
        &self.doc_terms[id.index()]
    }

    /// Document frequency of a term (0 for terms unseen at build time).
    pub fn df(&self, t: TermId) -> u64 {
        self.df.get(t.index()).copied().unwrap_or(0)
    }

    /// The document-frequency table, indexed by term id. Terms interned
    /// into the shared vocabulary after the build are absent (implicitly 0).
    pub fn df_table(&self) -> &[u64] {
        &self.df
    }

    /// A copy of the df table resized to `vocab_len` entries (new terms 0).
    pub fn df_table_resized(&self, vocab_len: usize) -> Vec<u64> {
        let mut t = self.df.clone();
        t.resize(vocab_len.max(t.len()), 0);
        t
    }

    /// The terming options the database was built with.
    pub fn options(&self) -> &TermingOptions {
        &self.options
    }

    /// True if the document contains the term (by id).
    pub fn doc_contains(&self, id: DocId, t: TermId) -> bool {
        self.doc_terms[id.index()].binary_search(&t).is_ok()
    }

    /// All per-document term rows in id order (serialization surface;
    /// restore via [`TextDatabase::from_parts`]).
    pub fn doc_terms_rows(&self) -> &[Vec<TermId>] {
        &self.doc_terms
    }

    /// Rebuild a database from serialized parts.
    ///
    /// Returns `None` when the parts are inconsistent: row count not
    /// matching the document count, or a document id not matching its
    /// position (ids are positional by construction).
    pub fn from_parts(
        docs: Vec<Document>,
        doc_terms: Vec<Vec<TermId>>,
        df: Vec<u64>,
        options: TermingOptions,
    ) -> Option<Self> {
        if docs.len() != doc_terms.len() {
            return None;
        }
        if docs.iter().enumerate().any(|(i, d)| d.id.index() != i) {
            return None;
        }
        Some(Self {
            docs,
            doc_terms,
            df,
            options,
        })
    }

    /// [`TextDatabase::from_parts`] for databases grown with
    /// [`TextDatabase::append_detached`]: documents carry external ids
    /// (e.g. the global archive ids of a sharded index), so instead of
    /// the positional invariant the ids must be strictly increasing —
    /// the order `append_detached` preserves.
    pub fn from_parts_detached(
        docs: Vec<Document>,
        doc_terms: Vec<Vec<TermId>>,
        df: Vec<u64>,
        options: TermingOptions,
    ) -> Option<Self> {
        if docs.len() != doc_terms.len() {
            return None;
        }
        if docs.windows(2).any(|w| w[0].id.index() >= w[1].id.index()) {
            return None;
        }
        Some(Self {
            docs,
            doc_terms,
            df,
            options,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u32, title: &str, text: &str) -> Document {
        Document {
            id: DocId(id),
            source: 0,
            day: 0,
            title: title.into(),
            text: text.into(),
        }
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let docs = vec![
            doc(0, "War", "The war escalated. War coverage continued."),
            doc(1, "Peace", "A peace accord was signed."),
        ];
        let mut vocab = Vocabulary::new();
        let db = TextDatabase::build(docs, &mut vocab, TermingOptions::default());
        let war = vocab.get("war").unwrap();
        assert_eq!(db.df(war), 1, "df counts documents, not mentions");
        let peace = vocab.get("peace").unwrap();
        assert_eq!(db.df(peace), 1);
    }

    #[test]
    fn stopwords_and_numbers_excluded() {
        let docs = vec![doc(0, "T", "The summit of 2005 was a success.")];
        let mut vocab = Vocabulary::new();
        let db = TextDatabase::build(docs, &mut vocab, TermingOptions::default());
        assert!(vocab.get("the").is_none());
        assert!(vocab.get("2005").is_none());
        assert!(vocab.get("summit").is_some());
        let _ = db;
    }

    #[test]
    fn bigrams_present_when_enabled() {
        let docs = vec![doc(0, "T", "The real estate market collapsed.")];
        let mut vocab = Vocabulary::new();
        let _db = TextDatabase::build(docs, &mut vocab, TermingOptions::default());
        assert!(vocab.get("real estate").is_some());
        assert!(vocab.get("estate market").is_some());
        // Bigrams never span a stopword.
        assert!(vocab.get("the real").is_none());
    }

    #[test]
    fn bigrams_disabled() {
        let docs = vec![doc(0, "T", "real estate market")];
        let mut vocab = Vocabulary::new();
        let _db = TextDatabase::build(
            docs,
            &mut vocab,
            TermingOptions {
                bigrams: false,
                min_len: 2,
            },
        );
        assert!(vocab.get("real estate").is_none());
        assert!(vocab.get("real").is_some());
    }

    #[test]
    fn doc_terms_sorted_distinct() {
        let docs = vec![doc(0, "T", "alpha beta alpha gamma beta")];
        let mut vocab = Vocabulary::new();
        let db = TextDatabase::build(docs, &mut vocab, TermingOptions::default());
        let terms = db.doc_terms(DocId(0));
        let mut sorted = terms.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(terms, sorted.as_slice());
    }

    #[test]
    fn unknown_term_df_zero() {
        let docs = vec![doc(0, "T", "alpha")];
        let mut vocab = Vocabulary::new();
        let db = TextDatabase::build(docs, &mut vocab, TermingOptions::default());
        let later = vocab.intern("political leaders");
        assert_eq!(db.df(later), 0);
        let resized = db.df_table_resized(vocab.len());
        assert_eq!(resized[later.index()], 0);
    }

    #[test]
    fn doc_contains_works() {
        let docs = vec![doc(0, "T", "alpha beta")];
        let mut vocab = Vocabulary::new();
        let db = TextDatabase::build(docs, &mut vocab, TermingOptions::default());
        let alpha = vocab.get("alpha").unwrap();
        assert!(db.doc_contains(DocId(0), alpha));
        let zeta = vocab.intern("zeta");
        assert!(!db.doc_contains(DocId(0), zeta));
    }

    #[test]
    fn empty_database() {
        let mut vocab = Vocabulary::new();
        let db = TextDatabase::build(vec![], &mut vocab, TermingOptions::default());
        assert!(db.is_empty());
        assert_eq!(db.len(), 0);
    }

    #[test]
    fn append_matches_batch_build() {
        let all = vec![
            doc(0, "A", "the war escalated in the capital"),
            doc(1, "B", "peace talks resumed near the border"),
            doc(2, "C", "markets rallied as war fears eased"),
            doc(3, "D", "the border patrol reported calm"),
        ];
        // One-shot build.
        let mut vocab_batch = Vocabulary::new();
        let batch = TextDatabase::build(all.clone(), &mut vocab_batch, TermingOptions::default());
        // Incremental: empty build + two appends.
        let mut vocab_inc = Vocabulary::new();
        let mut inc = TextDatabase::build(vec![], &mut vocab_inc, TermingOptions::default());
        let r1 = inc.append(all[..2].to_vec(), &mut vocab_inc);
        assert_eq!(r1, 0..2);
        let r2 = inc.append(all[2..].to_vec(), &mut vocab_inc);
        assert_eq!(r2, 2..4);
        assert_eq!(inc.len(), batch.len());
        // Same interleaving (docs in order) → identical ids and tables.
        assert_eq!(vocab_inc.len(), vocab_batch.len());
        for i in 0..batch.len() {
            assert_eq!(
                inc.doc_terms(DocId(i as u32)),
                batch.doc_terms(DocId(i as u32))
            );
        }
        assert_eq!(inc.df_table(), batch.df_table());
    }

    #[test]
    fn append_detached_keeps_external_ids_and_df_deltas() {
        // Round-robin partition of 4 docs into 2 shards: each shard
        // stores its docs at positions 0..2 while the ids stay global.
        let all = [
            doc(0, "A", "the war escalated in the capital"),
            doc(1, "B", "peace talks resumed near the border"),
            doc(2, "C", "markets rallied as war fears eased"),
            doc(3, "D", "the border patrol reported calm"),
        ];
        let mut vocab = Vocabulary::new();
        let mut shard = TextDatabase::build(vec![], &mut vocab, TermingOptions::default());
        let r = shard.append_detached(vec![all[0].clone(), all[2].clone()], &mut vocab);
        assert_eq!(r, 0..2);
        // Positional accessors address shard slots; ids stay global.
        assert_eq!(shard.docs()[1].id, DocId(2));
        let war = vocab.get("war").unwrap();
        assert_eq!(shard.df(war), 2, "df delta counts both shard docs");
        assert!(!shard.doc_terms(DocId(1)).is_empty());
        // A second detached append keeps delta-updating.
        shard.append_detached(vec![all[1].clone()], &mut vocab);
        let border = vocab.get("border").unwrap();
        assert_eq!(shard.df(border), 1);
        assert_eq!(shard.len(), 3);
    }

    #[test]
    fn append_df_accounts_only_new_docs() {
        let mut vocab = Vocabulary::new();
        let mut db = TextDatabase::build(
            vec![doc(0, "A", "alpha beta")],
            &mut vocab,
            TermingOptions::default(),
        );
        db.append(vec![doc(1, "B", "beta gamma")], &mut vocab);
        assert_eq!(db.df(vocab.get("alpha").unwrap()), 1);
        assert_eq!(db.df(vocab.get("beta").unwrap()), 2);
        assert_eq!(db.df(vocab.get("gamma").unwrap()), 1);
        assert_eq!(db.len(), 2);
    }
}
