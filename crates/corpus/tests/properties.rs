#![allow(clippy::unwrap_used)]

//! Property-based tests for the text-database substrate.

use facet_corpus::db::TermingOptions;
use facet_corpus::{DocId, Document, TextDatabase};
use facet_textkit::Vocabulary;
use proptest::prelude::*;

fn docs_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z ]{0,120}", 1..25)
}

fn build(texts: &[String]) -> (TextDatabase, Vocabulary) {
    let docs: Vec<Document> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| Document {
            id: DocId(i as u32),
            source: 0,
            day: 0,
            title: String::new(),
            text: t.clone(),
        })
        .collect();
    let mut vocab = Vocabulary::new();
    let db = TextDatabase::build(docs, &mut vocab, TermingOptions::default());
    (db, vocab)
}

proptest! {
    /// df(t) equals the number of documents whose term set contains t,
    /// and df is bounded by the document count.
    #[test]
    fn df_matches_doc_term_sets(texts in docs_strategy()) {
        let (db, vocab) = build(&texts);
        for (id, _term) in vocab.iter() {
            let expected = (0..db.len())
                .filter(|&i| db.doc_terms(DocId(i as u32)).binary_search(&id).is_ok())
                .count() as u64;
            prop_assert_eq!(db.df(id), expected);
            prop_assert!(db.df(id) <= db.len() as u64);
            prop_assert!(db.df(id) >= 1, "interned terms occur somewhere");
        }
    }

    /// Document term lists are sorted and deduplicated.
    #[test]
    fn doc_terms_sorted_unique(texts in docs_strategy()) {
        let (db, _vocab) = build(&texts);
        for i in 0..db.len() {
            let terms = db.doc_terms(DocId(i as u32));
            for w in terms.windows(2) {
                prop_assert!(w[0] < w[1], "not strictly sorted");
            }
        }
    }

    /// Rebuilding from the same input yields identical statistics.
    #[test]
    fn build_deterministic(texts in docs_strategy()) {
        let (db1, v1) = build(&texts);
        let (db2, v2) = build(&texts);
        prop_assert_eq!(v1.len(), v2.len());
        prop_assert_eq!(db1.df_table(), db2.df_table());
    }

    /// Stopwords never enter the vocabulary.
    #[test]
    fn no_stopwords_indexed(texts in docs_strategy()) {
        let (_db, vocab) = build(&texts);
        for (_, term) in vocab.iter() {
            if !term.contains(' ') {
                prop_assert!(
                    !facet_textkit::is_stopword(term),
                    "stopword {term:?} was indexed"
                );
            }
        }
    }

    /// doc_contains agrees with the term lists.
    #[test]
    fn contains_agrees(texts in docs_strategy()) {
        let (db, vocab) = build(&texts);
        for i in 0..db.len() {
            let id = DocId(i as u32);
            for (t, _) in vocab.iter().take(30) {
                let in_list = db.doc_terms(id).binary_search(&t).is_ok();
                prop_assert_eq!(db.doc_contains(id, t), in_list);
            }
        }
    }
}
