//! Baseline systems the paper compares against (explicitly or
//! implicitly):
//!
//! * [`raw_subsumption_terms`] — the plain subsumption approach of
//!   Sanderson & Croft applied directly to the original database, without
//!   important-term extraction or context expansion. The paper's Figure 5
//!   shows its output: generic high-frequency words ("year", "new",
//!   "time", "people", …) that are useless as facets.
//! * [`SelectionStatistic::ChiSquare`](crate::selection::SelectionStatistic)
//!   (used through the pipeline) — the chi-square ablation of the
//!   selection step.

use crate::subsumption::{build_subsumption_forest, SubsumptionForest, SubsumptionParams};
use facet_corpus::TextDatabase;
use facet_textkit::{TermId, Vocabulary};

/// The Figure 5 baseline: take the `top_n` most frequent terms of the
/// *original* database and return them with their subsumption forest.
/// The top terms are, inevitably, the corpus's generic vocabulary.
pub fn raw_subsumption_terms(
    db: &TextDatabase,
    vocab: &Vocabulary,
    top_n: usize,
) -> (Vec<TermId>, SubsumptionForest) {
    let mut by_freq: Vec<(TermId, u64)> = vocab
        .iter()
        .map(|(id, _)| (id, db.df(id)))
        .filter(|&(_, f)| f > 0)
        .collect();
    by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    by_freq.truncate(top_n);
    let terms: Vec<TermId> = by_freq.into_iter().map(|(t, _)| t).collect();
    let doc_terms: Vec<Vec<TermId>> = (0..db.len())
        .map(|i| db.doc_terms(facet_corpus::DocId(i as u32)).to_vec())
        .collect();
    let forest = build_subsumption_forest(&terms, &doc_terms, SubsumptionParams::default());
    (terms, forest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use facet_corpus::db::TermingOptions;
    use facet_corpus::{DocId, Document};

    #[test]
    fn baseline_returns_most_frequent_terms() {
        let docs: Vec<Document> = (0..10)
            .map(|i| Document {
                id: DocId(i),
                source: 0,
                day: 0,
                title: "T".into(),
                text: if i < 8 {
                    "people report year market".into()
                } else {
                    "drought sanctuary".into()
                },
            })
            .collect();
        let mut vocab = Vocabulary::new();
        let db = TextDatabase::build(docs, &mut vocab, TermingOptions::default());
        let (terms, _forest) = raw_subsumption_terms(&db, &vocab, 4);
        let labels: Vec<&str> = terms.iter().map(|&t| vocab.term(t)).collect();
        // Only the generic, frequent words survive.
        assert!(labels.contains(&"people"));
        assert!(labels.contains(&"year"));
        assert!(!labels.contains(&"drought"));
    }

    #[test]
    fn top_n_bounds_output() {
        let docs = vec![Document {
            id: DocId(0),
            source: 0,
            day: 0,
            title: "T".into(),
            text: "alpha beta gamma delta".into(),
        }];
        let mut vocab = Vocabulary::new();
        let db = TextDatabase::build(docs, &mut vocab, TermingOptions::default());
        let (terms, forest) = raw_subsumption_terms(&db, &vocab, 2);
        assert_eq!(terms.len(), 2);
        assert_eq!(forest.terms.len(), 2);
    }
}
