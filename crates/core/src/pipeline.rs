//! The end-to-end facet pipeline (Steps 1–3 plus hierarchy construction).
//!
//! [`FacetPipeline`] is the one-shot batch facade: it borrows a
//! [`TextDatabase`] and runs the stages once. It shares its building
//! blocks — the append-based expansion engine and the interning-order
//! independent [`select_facet_terms_stable`] ranking — with the
//! incremental [`crate::index::FacetIndex`], so a batch run and a
//! sequence of index appends over the same corpus produce identical
//! facet terms, rankings, and hierarchies.

use crate::config::PipelineOptions;
use crate::hierarchy::FacetForest;
use crate::selection::{
    select_facet_terms_stable, FacetCandidate, SelectionInputs, SelectionStatistic,
};
use crate::subsumption::{build_subsumption_forest, SubsumptionParams};
use facet_corpus::TextDatabase;
use facet_obs::Recorder;
use facet_resources::{expand_database_recorded, ContextResource, ContextualizedDatabase};
use facet_termx::{extract_important_terms, TermExtractor};
use facet_textkit::Vocabulary;

/// The result of running the pipeline on a database.
#[derive(Debug)]
pub struct FacetExtraction {
    /// `I(d)` per document.
    pub important_terms: Vec<Vec<String>>,
    /// The contextualized database `C(D)`.
    pub contextualized: ContextualizedDatabase,
    /// Ranked candidate facet terms (top-k).
    pub candidates: Vec<FacetCandidate>,
}

impl FacetExtraction {
    /// The candidate facet terms as strings.
    pub fn facet_terms<'v>(&self, vocab: &'v Vocabulary) -> Vec<&'v str> {
        self.candidates.iter().map(|c| vocab.term(c.term)).collect()
    }
}

/// The unsupervised facet-extraction pipeline.
///
/// Configure with any subset of term extractors (Section IV-A) and
/// context resources (Section IV-B); run on a [`TextDatabase`].
pub struct FacetPipeline<'a> {
    extractors: Vec<&'a dyn TermExtractor>,
    resources: Vec<&'a dyn ContextResource>,
    options: PipelineOptions,
    statistic: SelectionStatistic,
    recorder: Recorder,
}

impl<'a> FacetPipeline<'a> {
    /// Create a pipeline with the paper's configuration (log-likelihood
    /// ranking).
    pub fn new(
        extractors: Vec<&'a dyn TermExtractor>,
        resources: Vec<&'a dyn ContextResource>,
        options: PipelineOptions,
    ) -> Self {
        Self {
            extractors,
            resources,
            options,
            statistic: SelectionStatistic::LogLikelihood,
            recorder: Recorder::disabled(),
        }
    }

    /// Switch the ranking statistic (ablation).
    pub fn with_statistic(mut self, statistic: SelectionStatistic) -> Self {
        self.statistic = statistic;
        self
    }

    /// Attach an observability recorder: each stage (extract, expand,
    /// select, subsumption) records a span, and expansion records
    /// per-resource query counts and latency histograms.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The configured options.
    pub fn options(&self) -> &PipelineOptions {
        &self.options
    }

    /// The attached recorder (disabled unless set via
    /// [`FacetPipeline::with_recorder`]).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Step 1 only: important terms per document.
    pub fn extract_important(&self, db: &TextDatabase) -> Vec<Vec<String>> {
        let _span = self.recorder.span("extract");
        _span.attr("docs", db.len() as u64);
        let out: Vec<Vec<String>> = db
            .docs()
            .iter()
            .map(|d| extract_important_terms(&self.extractors, &d.full_text()))
            .collect();
        self.recorder.add("extract.docs", out.len() as u64);
        self.recorder.add(
            "extract.important_terms",
            out.iter().map(|t| t.len() as u64).sum(),
        );
        out
    }

    /// Run Steps 1–3. Context terms are interned into `vocab`.
    pub fn run(&self, db: &TextDatabase, vocab: &mut Vocabulary) -> FacetExtraction {
        let important_terms = self.extract_important(db);
        self.run_with_important(db, vocab, important_terms)
    }

    /// Run Steps 2–3 with precomputed `I(d)` (lets experiments reuse the
    /// expensive extraction across resource combinations).
    pub fn run_with_important(
        &self,
        db: &TextDatabase,
        vocab: &mut Vocabulary,
        important_terms: Vec<Vec<String>>,
    ) -> FacetExtraction {
        let contextualized = {
            let _span = self.recorder.span("expand");
            expand_database_recorded(
                db,
                &important_terms,
                &self.resources,
                vocab,
                &self.options.expansion,
                &self.recorder,
            )
        };
        let candidates = {
            let _span = self.recorder.span("select");
            let df = db.df_table_resized(vocab.len());
            select_facet_terms_stable(
                SelectionInputs {
                    df: &df,
                    df_c: contextualized.df_table(),
                    n_docs: db.len() as u64,
                },
                self.statistic,
                self.options.top_k,
                self.options.min_df_c,
                vocab,
            )
        };
        self.recorder
            .add("select.candidates", candidates.len() as u64);
        FacetExtraction {
            important_terms,
            contextualized,
            candidates,
        }
    }

    /// Step 4: build the facet hierarchies over an extraction's candidate
    /// terms using subsumption in the contextualized database.
    pub fn build_hierarchies(
        &self,
        extraction: &FacetExtraction,
        vocab: &Vocabulary,
    ) -> FacetForest {
        let _span = self.recorder.span("subsumption");
        _span.attr("candidates", extraction.candidates.len() as u64);
        let terms: Vec<_> = extraction.candidates.iter().map(|c| c.term).collect();
        let sub = build_subsumption_forest(
            &terms,
            &extraction.contextualized.doc_terms,
            SubsumptionParams {
                threshold: self.options.subsumption_threshold,
                ..Default::default()
            },
        );
        FacetForest::from_subsumption(&sub, &vocab.freeze(), |t| extraction.contextualized.df_c(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facet_corpus::db::TermingOptions;
    use facet_corpus::{DocId, Document};
    use std::collections::HashMap;

    /// A fixed extractor that returns capitalized bigrams it has been told
    /// about, and a resource that maps them to facet context terms.
    struct FixedExtractor;
    impl TermExtractor for FixedExtractor {
        fn name(&self) -> &'static str {
            "Fixed"
        }
        fn extract(&self, text: &str) -> Vec<String> {
            if text.contains("Jacques Chirac") {
                vec!["jacques chirac".into()]
            } else {
                vec![]
            }
        }
    }

    struct FixedResource(HashMap<&'static str, Vec<&'static str>>);
    impl ContextResource for FixedResource {
        fn name(&self) -> &'static str {
            "Fixed"
        }
        fn context_terms(&self, term: &str) -> Vec<String> {
            self.0
                .get(term)
                .map(|v| v.iter().map(|s| s.to_string()).collect())
                .unwrap_or_default()
        }
    }

    fn db() -> (TextDatabase, Vocabulary) {
        let mut docs: Vec<Document> = (0..12)
            .map(|i| Document {
                id: DocId(i),
                source: 0,
                day: 0,
                title: "Story".into(),
                text: "Jacques Chirac discussed matters with advisers in the capital.".into(),
            })
            .collect();
        // A few documents without the entity (background variety).
        for i in 12..16 {
            docs.push(Document {
                id: DocId(i),
                source: 0,
                day: 0,
                title: "Filler".into(),
                text: "the markets were flat and quiet through the session".into(),
            });
        }
        let mut vocab = Vocabulary::new();
        let db = TextDatabase::build(docs, &mut vocab, TermingOptions::default());
        (db, vocab)
    }

    #[test]
    fn end_to_end_selects_context_facets() {
        let (db, mut vocab) = db();
        let e = FixedExtractor;
        let mut map = HashMap::new();
        map.insert("jacques chirac", vec!["political leaders", "france"]);
        let r = FixedResource(map);
        let pipeline = FacetPipeline::new(
            vec![&e],
            vec![&r],
            PipelineOptions {
                top_k: 10,
                ..Default::default()
            },
        );
        let out = pipeline.run(&db, &mut vocab);
        let terms = out.facet_terms(&vocab);
        assert!(terms.contains(&"political leaders"), "{terms:?}");
        assert!(terms.contains(&"france"), "{terms:?}");
        // Background words must not surface.
        assert!(!terms.contains(&"markets"));
    }

    #[test]
    fn hierarchies_built_over_candidates() {
        let (db, mut vocab) = db();
        let e = FixedExtractor;
        let mut map = HashMap::new();
        map.insert("jacques chirac", vec!["political leaders", "france"]);
        let r = FixedResource(map);
        let pipeline = FacetPipeline::new(
            vec![&e],
            vec![&r],
            PipelineOptions {
                top_k: 10,
                ..Default::default()
            },
        );
        let out = pipeline.run(&db, &mut vocab);
        let forest = pipeline.build_hierarchies(&out, &vocab);
        assert!(forest.total_terms() >= 2);
    }

    #[test]
    fn recorder_captures_stage_spans() {
        let (db, mut vocab) = db();
        let e = FixedExtractor;
        let mut map = HashMap::new();
        map.insert("jacques chirac", vec!["political leaders", "france"]);
        let r = FixedResource(map);
        let recorder = facet_obs::Recorder::enabled();
        let pipeline = FacetPipeline::new(
            vec![&e],
            vec![&r],
            PipelineOptions {
                top_k: 10,
                ..Default::default()
            },
        )
        .with_recorder(recorder.clone());
        let out = pipeline.run(&db, &mut vocab);
        let _forest = pipeline.build_hierarchies(&out, &vocab);
        let counts = recorder.snapshot_counts_only();
        assert_eq!(counts["span.extract.count"], 1);
        assert_eq!(counts["span.expand.count"], 1);
        assert_eq!(counts["span.select.count"], 1);
        assert_eq!(counts["span.subsumption.count"], 1);
        assert!(counts["counter.resource.Fixed.queries"] >= 1);
    }

    #[test]
    fn important_terms_reusable() {
        let (db, mut vocab) = db();
        let e = FixedExtractor;
        let r = FixedResource(HashMap::new());
        let pipeline = FacetPipeline::new(vec![&e], vec![&r], PipelineOptions::default());
        let important = pipeline.extract_important(&db);
        assert_eq!(important.len(), db.len());
        let out = pipeline.run_with_important(&db, &mut vocab, important.clone());
        assert_eq!(out.important_terms, important);
    }
}
