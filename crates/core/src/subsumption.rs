//! Sanderson–Croft subsumption hierarchies (SIGIR '99), used by the paper
//! to organize the selected facet terms into browsable trees.
//!
//! Term `x` **subsumes** `y` iff `P(x|y) ≥ threshold` and `P(y|x) < 1`,
//! with probabilities estimated from document co-occurrence: `P(x|y) =
//! df(x ∧ y) / df(y)`. Each term is attached under its *most specific*
//! subsumer (the subsumer with the smallest document frequency), which
//! yields a forest.

use facet_textkit::TermId;

/// Parameters for subsumption.
#[derive(Debug, Clone, Copy)]
pub struct SubsumptionParams {
    /// The `P(x|y)` threshold (Sanderson & Croft use 0.8).
    pub threshold: f64,
    /// A subsumer must be strictly more general: `df(x) ≥ ratio · df(y)`.
    /// Keeps mutually co-occurring same-specificity terms (two names that
    /// always travel together) from parenting each other.
    pub min_generality_ratio: f64,
    /// A term present in more than this fraction of documents cannot be a
    /// parent: it co-occurs with everything and carries no subsumption
    /// information. Such terms become facet roots instead.
    pub max_parent_df_fraction: f64,
    /// Minimum lift `P(x|y) / P(x)`: the parent must co-occur with the
    /// child *above its own base rate*, rejecting chance co-occurrence of
    /// merely frequent terms (a PMI-style association requirement).
    pub min_lift: f64,
}

impl Default for SubsumptionParams {
    fn default() -> Self {
        Self {
            threshold: 0.8,
            min_generality_ratio: 1.5,
            max_parent_df_fraction: 0.8,
            min_lift: 1.15,
        }
    }
}

/// A subsumption forest over a set of terms: `parent[i]` is the index
/// (into the input term list) of term `i`'s parent, or `None` for roots.
#[derive(Debug, Clone)]
pub struct SubsumptionForest {
    /// The terms, in input order.
    pub terms: Vec<TermId>,
    /// Parent index per term.
    pub parent: Vec<Option<usize>>,
}

impl SubsumptionForest {
    /// Indices of the root terms.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.terms.len())
            .filter(|&i| self.parent[i].is_none())
            .collect()
    }

    /// Indices of the children of term `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        (0..self.terms.len())
            .filter(|&j| self.parent[j] == Some(i))
            .collect()
    }

    /// Depth of term `i` (roots have depth 0).
    pub fn depth(&self, i: usize) -> usize {
        let mut d = 0;
        let mut cur = self.parent[i];
        while let Some(p) = cur {
            d += 1;
            cur = self.parent[p];
        }
        d
    }
}

/// Build the subsumption forest for `terms`, where `doc_terms[d]` lists
/// the distinct (sorted) terms of document `d` — typically from the
/// contextualized database, as in the paper.
pub fn build_subsumption_forest(
    terms: &[TermId],
    doc_terms: &[Vec<TermId>],
    params: SubsumptionParams,
) -> SubsumptionForest {
    let n = terms.len();
    // Dense symbol-indexed position table: `term_pos[sym]` is the term's
    // index in the candidate list, or the sentinel for non-candidates.
    // Candidate sets are small (top-k selection output), so the table is
    // bounded by the vocabulary size and probes are a single index.
    const ABSENT: u32 = u32::MAX;
    let max_sym = terms.iter().map(|t| t.index()).max().map_or(0, |m| m + 1);
    let mut term_pos = vec![ABSENT; max_sym];
    for (i, t) in terms.iter().enumerate() {
        term_pos[t.index()] = i as u32;
    }

    // Document frequency and pairwise co-document frequency restricted to
    // the candidate terms, in a dense n×n matrix (upper triangle used).
    let mut df = vec![0u64; n];
    let mut co = vec![0u64; n * n];
    let mut present: Vec<usize> = Vec::new();
    for d in doc_terms {
        present.clear();
        present.extend(d.iter().filter_map(|t| {
            term_pos
                .get(t.index())
                .copied()
                .filter(|&p| p != ABSENT)
                .map(|p| p as usize)
        }));
        for &i in &present {
            df[i] += 1;
        }
        for (a, &i) in present.iter().enumerate() {
            for &j in present.iter().skip(a + 1) {
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                co[lo * n + hi] += 1;
            }
        }
    }
    let co_df = |i: usize, j: usize| -> u64 {
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        co[lo * n + hi]
    };

    // For each term y, find subsumers and attach to the best one. Two
    // forces must balance: subsumption *strength* (a parent present in all
    // of y's documents beats one that barely clears the threshold — this
    // rejects frequent terms that co-occur by chance) and *specificity*
    // (Sanderson & Croft's transitive reduction: attach to the most
    // specific subsumer). We bucket P(x|y) into 5%-wide confidence bands
    // and pick the most specific subsumer within the strongest band.
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for y in 0..n {
        if df[y] == 0 {
            continue;
        }
        // (index, confidence bucket) of the current best parent.
        let mut best: Option<(usize, u32)> = None;
        let max_parent_df = (params.max_parent_df_fraction * doc_terms.len() as f64).ceil() as u64;
        for x in 0..n {
            if x == y || df[x] == 0 || df[x] > max_parent_df {
                continue;
            }
            if (df[x] as f64) < params.min_generality_ratio * df[y] as f64 {
                continue;
            }
            let cxy = co_df(x, y);
            let p_x_given_y = cxy as f64 / df[y] as f64;
            let p_y_given_x = cxy as f64 / df[x] as f64;
            let base_rate = df[x] as f64 / doc_terms.len().max(1) as f64;
            let lift = if base_rate > 0.0 {
                p_x_given_y / base_rate
            } else {
                f64::INFINITY
            };
            if p_x_given_y >= params.threshold && p_y_given_x < 1.0 && lift >= params.min_lift {
                let bucket = (p_x_given_y * 20.0).floor() as u32;
                let better = match best {
                    None => true,
                    Some((b, bb)) => bucket > bb || (bucket == bb && df[x] < df[b]),
                };
                if better {
                    best = Some((x, bucket));
                }
            }
        }
        parent[y] = best.map(|(x, _)| x);
    }

    // Break any cycles (possible with mutual near-subsumption): walk each
    // chain; on revisit, cut the closing edge.
    for start in 0..n {
        let mut seen = vec![false; n];
        let mut cur = start;
        while let Some(p) = parent[cur] {
            if seen[p] {
                parent[cur] = None;
                break;
            }
            seen[cur] = true;
            cur = p;
        }
    }

    SubsumptionForest {
        terms: terms.to_vec(),
        parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Params without the density guards, for small synthetic fixtures
    /// where every term is frequent by construction.
    fn relaxed() -> SubsumptionParams {
        SubsumptionParams {
            threshold: 0.8,
            min_generality_ratio: 1.0,
            max_parent_df_fraction: 1.0,
            min_lift: 0.0,
        }
    }

    /// docs: "politics" appears whenever "election" or "ballot" does,
    /// plus alone; "election" appears whenever "ballot" does, plus alone.
    fn docs() -> Vec<Vec<TermId>> {
        let politics = TermId(0);
        let election = TermId(1);
        let ballot = TermId(2);
        let unrelated = TermId(3);
        vec![
            vec![politics],
            vec![politics, election],
            vec![politics, election, ballot],
            vec![politics, election, ballot],
            vec![unrelated],
            vec![unrelated, politics],
        ]
    }

    #[test]
    fn chain_structure_recovered() {
        let terms = vec![TermId(0), TermId(1), TermId(2), TermId(3)];
        let f = build_subsumption_forest(&terms, &docs(), relaxed());
        // ballot → election (most specific subsumer), election → politics.
        assert_eq!(f.parent[2], Some(1));
        assert_eq!(f.parent[1], Some(0));
        assert_eq!(f.parent[0], None);
        assert_eq!(f.parent[3], None);
    }

    #[test]
    fn roots_and_children() {
        let terms = vec![TermId(0), TermId(1), TermId(2), TermId(3)];
        let f = build_subsumption_forest(&terms, &docs(), relaxed());
        assert_eq!(f.roots(), vec![0, 3]);
        assert_eq!(f.children(0), vec![1]);
        assert_eq!(f.children(1), vec![2]);
        assert_eq!(f.depth(2), 2);
    }

    #[test]
    fn cooccurring_identical_terms_not_parented() {
        // Two terms always co-occurring: P(x|y)=P(y|x)=1 → no subsumption
        // (the paper's P(y|x) < 1 condition).
        let a = TermId(0);
        let b = TermId(1);
        let docs = vec![vec![a, b], vec![a, b]];
        let f = build_subsumption_forest(&[a, b], &docs, SubsumptionParams::default());
        assert_eq!(f.parent, vec![None, None]);
    }

    #[test]
    fn threshold_controls_edges() {
        // P(x|y) = 2/3 ≈ 0.67, P(y|x) = 2/4 = 0.5: x can subsume y at a
        // loose threshold, never vice versa.
        let x = TermId(0);
        let y = TermId(1);
        let docs = vec![vec![x, y], vec![x, y], vec![y], vec![x], vec![x]];
        let strict = build_subsumption_forest(
            &[x, y],
            &docs,
            SubsumptionParams {
                threshold: 0.8,
                ..relaxed()
            },
        );
        assert_eq!(strict.parent[1], None);
        let loose = build_subsumption_forest(
            &[x, y],
            &docs,
            SubsumptionParams {
                threshold: 0.6,
                ..relaxed()
            },
        );
        assert_eq!(loose.parent[1], Some(0));
    }

    #[test]
    fn absent_terms_are_roots() {
        let f = build_subsumption_forest(
            &[TermId(0), TermId(99)],
            &[vec![TermId(0)]],
            SubsumptionParams::default(),
        );
        assert_eq!(f.parent[1], None);
    }

    #[test]
    fn universal_terms_cannot_parent() {
        // "everywhere" occurs in every doc: with the density guards it is
        // excluded as a parent even though it trivially subsumes "rare".
        let everywhere = TermId(0);
        let rare = TermId(1);
        let docs: Vec<Vec<TermId>> = (0..10)
            .map(|i| {
                if i < 2 {
                    vec![everywhere, rare]
                } else {
                    vec![everywhere]
                }
            })
            .collect();
        let guarded =
            build_subsumption_forest(&[everywhere, rare], &docs, SubsumptionParams::default());
        assert_eq!(guarded.parent[1], None, "universal term must not parent");
        let permissive = build_subsumption_forest(&[everywhere, rare], &docs, relaxed());
        assert_eq!(permissive.parent[1], Some(0));
    }

    #[test]
    fn lift_rejects_chance_cooccurrence() {
        // x is frequent (70%); y co-occurs with it at roughly x's base
        // rate. P(x|y) clears 0.8 but the lift is ~1.1 — rejected.
        let x = TermId(0);
        let y = TermId(1);
        let mut docs: Vec<Vec<TermId>> = Vec::new();
        for i in 0..100 {
            let mut d = Vec::new();
            if i % 10 < 7 {
                d.push(x);
            }
            // y in docs 0..10: 8 of them with x.
            if i < 10 {
                if i < 8 && !d.contains(&x) {
                    d.push(x);
                }
                d.push(y);
            }
            d.sort();
            docs.push(d);
        }
        let f = build_subsumption_forest(
            &[x, y],
            &docs,
            SubsumptionParams {
                min_lift: 1.3,
                ..relaxed()
            },
        );
        assert_eq!(f.parent[1], None, "chance co-occurrence must not subsume");
    }

    #[test]
    fn empty_inputs() {
        let f = build_subsumption_forest(&[], &[], SubsumptionParams::default());
        assert!(f.terms.is_empty());
        assert!(f.roots().is_empty());
    }
}
