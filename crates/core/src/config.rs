//! Pipeline configuration.

use facet_resources::ExpansionOptions;

/// Options for the end-to-end facet pipeline.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// How many top-ranked candidate facet terms to keep (the paper's
    /// "return the top-k terms in Facet(D)").
    pub top_k: usize,
    /// Expansion engine options (threading).
    pub expansion: ExpansionOptions,
    /// Subsumption threshold for hierarchy construction
    /// (Sanderson & Croft use P(x|y) ≥ 0.8).
    pub subsumption_threshold: f64,
    /// Minimum document frequency in `C(D)` for a candidate to be
    /// considered at all (filters one-off noise).
    pub min_df_c: u64,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self {
            top_k: 800,
            expansion: ExpansionOptions::default(),
            subsumption_threshold: 0.8,
            min_df_c: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let o = PipelineOptions::default();
        assert!(o.top_k > 0);
        assert!(o.subsumption_threshold > 0.5 && o.subsumption_threshold <= 1.0);
    }
}
