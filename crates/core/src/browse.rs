//! The faceted browsing engine: OLAP-style slice-and-dice over a text
//! database through the extracted facet hierarchies.
//!
//! The paper frames a faceted interface as "an OLAP-style cube over the
//! text documents" (Section I). The engine supports exactly that: select
//! facet terms (dimensions values), get the matching documents plus the
//! refinement counts for every other facet term — the numbers a faceted
//! UI shows next to each link.

use crate::hierarchy::{FacetForest, TreeNode};
use facet_corpus::DocId;
use facet_textkit::{TermId, Vocabulary};
use std::collections::HashMap;
use std::sync::Arc;

/// A browsing engine over one database and its facet forest.
///
/// The per-document term sets are held behind an [`Arc`], so an engine
/// built from a [`crate::index::FacetSnapshot`] shares the snapshot's
/// frozen state instead of copying it — the read path never needs a
/// `&mut` anything.
#[derive(Debug)]
pub struct BrowseEngine {
    forest: FacetForest,
    /// Per-document term sets (contextualized), sorted.
    doc_terms: Arc<Vec<Vec<TermId>>>,
    /// Inverted: facet term → documents carrying it.
    postings: HashMap<TermId, Vec<DocId>>,
}

impl BrowseEngine {
    /// Build the engine. `doc_terms[d]` are the (sorted, distinct) terms
    /// of document `d` in the contextualized database.
    pub fn new(forest: FacetForest, doc_terms: Vec<Vec<TermId>>) -> Self {
        Self::from_shared(forest, Arc::new(doc_terms))
    }

    /// Build the engine over already-shared per-document term sets
    /// (zero-copy from a snapshot).
    pub fn from_shared(forest: FacetForest, doc_terms: Arc<Vec<Vec<TermId>>>) -> Self {
        let mut postings: HashMap<TermId, Vec<DocId>> = HashMap::new();
        let facet_terms: Vec<TermId> = {
            fn collect(n: &TreeNode, out: &mut Vec<TermId>) {
                out.push(n.term);
                for c in &n.children {
                    collect(c, out);
                }
            }
            let mut v = Vec::new();
            for t in &forest.trees {
                collect(&t.root, &mut v);
            }
            v
        };
        for (d, terms) in doc_terms.iter().enumerate() {
            for &t in &facet_terms {
                if terms.binary_search(&t).is_ok() {
                    postings.entry(t).or_default().push(DocId(d as u32));
                }
            }
        }
        Self {
            forest,
            doc_terms,
            postings,
        }
    }

    /// The facet forest.
    pub fn forest(&self) -> &FacetForest {
        &self.forest
    }

    /// Number of documents.
    pub fn n_docs(&self) -> usize {
        self.doc_terms.len()
    }

    /// Documents carrying a facet term.
    pub fn docs_with(&self, term: TermId) -> &[DocId] {
        self.postings.get(&term).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Documents matching *all* selected facet terms (the slice/dice
    /// operation). An empty selection matches every document.
    pub fn select(&self, selection: &[TermId]) -> Vec<DocId> {
        if selection.is_empty() {
            return (0..self.doc_terms.len() as u32).map(DocId).collect();
        }
        // Intersect postings, smallest list first.
        let mut lists: Vec<&[DocId]> = selection.iter().map(|&t| self.docs_with(t)).collect();
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<DocId> = lists[0].to_vec();
        for l in &lists[1..] {
            let set: std::collections::HashSet<DocId> = l.iter().copied().collect();
            result.retain(|d| set.contains(d));
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// Refinement counts: for the current selection, how many matching
    /// documents each *child* of `node` (or each facet root if `None`)
    /// would retain. This is the "(n)" a faceted UI renders next to each
    /// narrowing link. Zero-count refinements are omitted.
    pub fn refinements(
        &self,
        selection: &[TermId],
        node: Option<&TreeNode>,
    ) -> Vec<(TermId, String, usize)> {
        let current = self.select(selection);
        let current_set: std::collections::HashSet<DocId> = current.into_iter().collect();
        let candidates: Vec<&TreeNode> = match node {
            Some(n) => n.children.iter().collect(),
            None => self.forest.trees.iter().map(|t| &t.root).collect(),
        };
        let mut out = Vec::new();
        for c in candidates {
            let count = self
                .docs_with(c.term)
                .iter()
                .filter(|d| current_set.contains(d))
                .count();
            if count > 0 {
                out.push((c.term, self.forest.label(c).to_string(), count));
            }
        }
        out.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.1.cmp(&b.1)));
        out
    }

    /// OLAP-style pivot: the co-occurrence matrix between two facet-term
    /// lists. `result[i][j]` is the number of documents carrying both
    /// `rows[i]` and `cols[j]` — the cube the paper's Section V-F
    /// envisions exposing to OLAP users ("show profit-margin distribution
    /// for users with this type of complaints").
    pub fn pivot(&self, rows: &[TermId], cols: &[TermId]) -> Vec<Vec<usize>> {
        let col_sets: Vec<std::collections::HashSet<DocId>> = cols
            .iter()
            .map(|&c| self.docs_with(c).iter().copied().collect())
            .collect();
        rows.iter()
            .map(|&r| {
                let row_docs = self.docs_with(r);
                col_sets
                    .iter()
                    .map(|cs| row_docs.iter().filter(|d| cs.contains(d)).count())
                    .collect()
            })
            .collect()
    }

    /// Convenience: select by facet-term labels.
    pub fn select_by_labels(&self, vocab: &Vocabulary, labels: &[&str]) -> Vec<DocId> {
        let terms: Vec<TermId> = labels
            .iter()
            .filter_map(|l| vocab.get(&l.to_lowercase()))
            .collect();
        if terms.len() != labels.len() {
            return Vec::new();
        }
        self.select(&terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::FacetTree;

    fn engine() -> (BrowseEngine, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let politics = vocab.intern("politics");
        let election = vocab.intern("election");
        let france = vocab.intern("france");
        // Forest: politics → election; france standalone. Labels resolve
        // through the frozen vocabulary the forest carries.
        let forest = FacetForest::new(
            vec![
                FacetTree {
                    root: TreeNode {
                        term: politics,
                        doc_count: 3,
                        children: vec![TreeNode {
                            term: election,
                            doc_count: 2,
                            children: vec![],
                        }],
                    },
                },
                FacetTree {
                    root: TreeNode {
                        term: france,
                        doc_count: 2,
                        children: vec![],
                    },
                },
            ],
            vocab.freeze(),
        );
        let doc_terms = vec![
            vec![politics, election, france], // doc 0
            vec![politics, election],         // doc 1
            vec![politics],                   // doc 2
            vec![france],                     // doc 3
        ];
        (BrowseEngine::new(forest, doc_terms), vocab)
    }

    #[test]
    fn empty_selection_matches_all() {
        let (e, _) = engine();
        assert_eq!(e.select(&[]).len(), 4);
    }

    #[test]
    fn single_term_selection() {
        let (e, vocab) = engine();
        let politics = vocab.get("politics").unwrap();
        assert_eq!(e.select(&[politics]).len(), 3);
    }

    #[test]
    fn slice_and_dice_intersection() {
        let (e, vocab) = engine();
        let election = vocab.get("election").unwrap();
        let france = vocab.get("france").unwrap();
        let docs = e.select(&[election, france]);
        assert_eq!(docs, vec![DocId(0)]);
    }

    #[test]
    fn refinement_counts() {
        let (e, _) = engine();
        // At the top level with no selection: politics(3), france(2).
        let refs = e.refinements(&[], None);
        assert_eq!(refs[0].1, "politics");
        assert_eq!(refs[0].2, 3);
        assert_eq!(refs[1].1, "france");
        assert_eq!(refs[1].2, 2);
    }

    #[test]
    fn refinements_under_selection() {
        let (e, vocab) = engine();
        let france = vocab.get("france").unwrap();
        // With "france" selected, drilling into politics children shows
        // election retaining 1 document.
        let politics_node = e.forest().trees[0].root.clone();
        let refs = e.refinements(&[france], Some(&politics_node));
        assert_eq!(
            refs,
            vec![(vocab.get("election").unwrap(), "election".into(), 1)]
        );
    }

    #[test]
    fn pivot_counts_cooccurrence() {
        let (e, vocab) = engine();
        let politics = vocab.get("politics").unwrap();
        let election = vocab.get("election").unwrap();
        let france = vocab.get("france").unwrap();
        let m = e.pivot(&[politics, election], &[france]);
        // politics ∧ france: doc 0 only; election ∧ france: doc 0 only.
        assert_eq!(m, vec![vec![1], vec![1]]);
        // Diagonal-style sanity: politics × politics = df(politics).
        let d = e.pivot(&[politics], &[politics]);
        assert_eq!(d, vec![vec![3]]);
    }

    #[test]
    fn pivot_empty_inputs() {
        let (e, _) = engine();
        assert!(e.pivot(&[], &[]).is_empty());
        let m = e.pivot(&[TermId(999)], &[TermId(998)]);
        assert_eq!(m, vec![vec![0]]);
    }

    #[test]
    fn select_by_labels_unknown_label_empty() {
        let (e, vocab) = engine();
        assert!(e.select_by_labels(&vocab, &["nonexistent"]).is_empty());
        assert_eq!(e.select_by_labels(&vocab, &["france"]).len(), 2);
    }
}
