//! The sharded facet index: parallel per-shard appends, one merged
//! snapshot.
//!
//! [`crate::index::FacetIndex`] runs its append pipeline on one thread.
//! For archive-scale ingest the expensive half of an append — Step-1
//! extraction, Step-2 expansion, and the df delta updates — is
//! embarrassingly parallel across documents, while Steps 3–4 (selection
//! and subsumption) are global computations over the full frequency
//! tables. [`ShardedFacetIndex`] exploits exactly that split:
//!
//! 1. **Partition.** Documents are assigned round-robin by global
//!    [`DocId`]: document `g` lives in shard `g % N` at shard-local
//!    position `g / N`. The key is a pure function of the id, so a
//!    document's shard never changes as the archive grows and any batch
//!    partition of the corpus lands every document in the same shard.
//! 2. **Parallel shard appends.** Each shard owns a full private copy of
//!    the per-document pipeline state — [`Vocabulary`], [`TextDatabase`]
//!    with its df slice, [`ExpansionCache`], and
//!    [`ContextualizedDatabase`] with its `df_C` slice — so the per-shard
//!    appends run with zero locking via `rayon::scope`. The shards share
//!    one [`CachedResource`] wrapper per external resource: its per-term
//!    latch guarantees each distinct important term hits the wrapped
//!    resource exactly once no matter how many shards race on it.
//! 3. **Deterministic merge.** Per-shard term ids are private, so the
//!    merge keeps one `shard id → merged id` mapping per shard
//!    (append-only, extended in shard order) and replays only the *new*
//!    documents, in global id order, into the merged df/`df_C` tables and
//!    per-document term sets — O(new documents), not O(corpus).
//! 4. **Global ranking.** Selection and subsumption run over the merged
//!    tables through the same [`rank_and_build_forest`] code path the
//!    unsharded index uses, and the result is published through the same
//!    atomically-swapped [`FacetSnapshot`].
//!
//! **Equivalence invariant:** for every shard count N and thread count,
//! the published snapshot is string-identical — facet terms, df/`df_C`
//! statistics, score bits, and forest edges — to a
//! [`crate::index::FacetIndex`] build of the same corpus. Term ids may
//! differ (each path interns in its own order), which is why every
//! ranking decision downstream of the tables is id-order-independent.
//!
//! The merge is serial and the shard workers are OS threads, so the
//! speedup ceiling is the parallel fraction of an append (extraction +
//! expansion + ingest) times the host's core count; on a single-core
//! host the sharded index degrades to the batch path plus a small
//! partition/merge overhead.

use crate::config::PipelineOptions;
use crate::hierarchy::FacetForest;
use crate::index::{rank_and_build_forest, FacetSnapshot, IndexError, RepairStats};
use crate::selection::SelectionStatistic;
use facet_corpus::db::TermingOptions;
use facet_corpus::{DocId, Document, TextDatabase};
use facet_obs::Recorder;
use facet_resources::{
    expand_append_recorded, intern_important_terms, repair_degraded_recorded, AppendOutcome,
    CacheStats, CachedResource, ContextResource, ContextualizedDatabase, ExpansionCache,
    ExpansionError, ExpansionOptions,
};
use facet_termx::{extract_important_terms, TermExtractor};
use facet_textkit::{InternStats, TermId, Vocabulary};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What one [`ShardedFacetIndex::append`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedAppendStats {
    /// Documents ingested by this append (across all shards).
    pub docs: usize,
    /// Documents each shard received from the round-robin partition.
    pub docs_per_shard: Vec<usize>,
    /// Important terms resolved for the first time, summed over shards.
    /// A term new to several shards in the same append counts once per
    /// shard here; the shared resource cache still answers all but the
    /// first shard from memory (see `resource_queries`).
    pub new_distinct_terms: usize,
    /// Distinct important terms answered from per-shard expansion caches,
    /// summed over shards.
    pub reused_terms: usize,
    /// Queries that actually reached the wrapped resources during this
    /// append: exactly one per globally-new distinct important term per
    /// resource, however many shards asked.
    pub resource_queries: u64,
    /// The generation of the snapshot this append published.
    pub generation: u64,
}

/// One shard's private pipeline state. Term ids in here are meaningful
/// only against this shard's vocabulary; `to_merged` translates them.
struct Shard {
    vocab: Vocabulary,
    db: TextDatabase,
    cache: ExpansionCache,
    ctx: ContextualizedDatabase,
    /// `I(d)` per shard-local document as shard-local symbols, aligned
    /// with `db` — kept so a repair pass can recompute exactly the
    /// documents that use a re-resolved term.
    important: Vec<Vec<TermId>>,
    /// `shard TermId → merged TermId`, extended (never rewritten) at each
    /// merge.
    to_merged: Vec<TermId>,
}

impl Shard {
    fn new() -> Self {
        let mut vocab = Vocabulary::new();
        let db = TextDatabase::build(Vec::new(), &mut vocab, TermingOptions::default());
        Self {
            vocab,
            db,
            cache: ExpansionCache::new(),
            ctx: ContextualizedDatabase::empty(),
            important: Vec::new(),
            to_merged: Vec::new(),
        }
    }
}

/// One shard's owned pipeline state, decoded by [`crate::persist`] for
/// [`ShardedFacetIndex::install_shard_state`]. Mirrors [`Shard`] field
/// for field; a separate type only because `Shard` stays private.
pub(crate) struct ShardState {
    pub vocab: Vocabulary,
    pub db: TextDatabase,
    pub cache: ExpansionCache,
    pub ctx: ContextualizedDatabase,
    pub important: Vec<Vec<TermId>>,
    pub to_merged: Vec<TermId>,
}

/// Borrowed view of one shard's state for [`crate::persist`]'s encoder.
pub(crate) struct ShardStateRef<'s> {
    pub vocab: &'s Vocabulary,
    pub db: &'s TextDatabase,
    pub cache: &'s ExpansionCache,
    pub ctx: &'s ContextualizedDatabase,
    pub important: &'s [Vec<TermId>],
    pub to_merged: &'s [TermId],
}

/// Union of the shards' degraded-coverage maps. A term degraded in
/// several shards appears once; its failed-resource list is identical in
/// every shard because resources fail (or answer) deterministically per
/// term.
// lint:allow(string-keyed-map, reason="serving-edge degraded report; strings materialize here by design")
fn merged_degraded(shards: &[Shard]) -> BTreeMap<String, Vec<String>> {
    let mut merged = BTreeMap::new();
    for shard in shards {
        for (term, failed) in shard.ctx.degraded() {
            merged.insert(term.clone(), failed.clone());
        }
    }
    merged
}

/// The sharded, incrementally-updatable facet index. See the
/// [module docs](self) for the partition/merge design and the
/// equivalence invariant against [`crate::index::FacetIndex`].
pub struct ShardedFacetIndex<'a> {
    extractors: Vec<&'a dyn TermExtractor>,
    /// One shared memo per external resource; all shards query through
    /// these, so the wrapped resource sees each distinct term once.
    shared: Vec<CachedResource<&'a dyn ContextResource>>,
    options: PipelineOptions,
    statistic: SelectionStatistic,
    recorder: Recorder,
    shards: Vec<Shard>,
    /// The merge-side vocabulary: the union of all shard vocabularies,
    /// interned in merge order.
    merged_vocab: Vocabulary,
    /// df over `D` in merged ids, delta-updated per append.
    merged_df: Vec<u64>,
    /// df over `C(D)` in merged ids, delta-updated per append.
    merged_df_c: Vec<u64>,
    /// Contextualized term sets per document, in global id order.
    merged_doc_terms: Vec<Vec<TermId>>,
    n_docs: usize,
    snapshot: RwLock<Arc<FacetSnapshot>>,
    generation: u64,
}

impl<'a> ShardedFacetIndex<'a> {
    /// An empty index over `n_shards` shards (clamped to at least 1) with
    /// the paper's configuration.
    pub fn new(
        n_shards: usize,
        extractors: Vec<&'a dyn TermExtractor>,
        resources: Vec<&'a dyn ContextResource>,
        options: PipelineOptions,
    ) -> Self {
        let n_shards = n_shards.max(1);
        let vocab = Vocabulary::new();
        let snapshot = Arc::new(FacetSnapshot::assemble(
            0,
            vocab.freeze(),
            Arc::new(Vec::new()),
            Vec::new(),
            FacetForest::default(),
            Arc::new(BTreeMap::new()),
        ));
        Self {
            extractors,
            shared: resources.into_iter().map(CachedResource::new).collect(),
            options,
            statistic: SelectionStatistic::LogLikelihood,
            recorder: Recorder::disabled(),
            shards: (0..n_shards).map(|_| Shard::new()).collect(),
            merged_vocab: vocab,
            merged_df: Vec::new(),
            merged_df_c: Vec::new(),
            merged_doc_terms: Vec::new(),
            n_docs: 0,
            snapshot: RwLock::new(snapshot),
            generation: 0,
        }
    }

    /// Build an index over an initial corpus: [`ShardedFacetIndex::new`]
    /// followed by one [`ShardedFacetIndex::append`].
    pub fn build(
        docs: Vec<Document>,
        n_shards: usize,
        extractors: Vec<&'a dyn TermExtractor>,
        resources: Vec<&'a dyn ContextResource>,
        options: PipelineOptions,
    ) -> Result<Self, IndexError> {
        let mut index = Self::new(n_shards, extractors, resources, options);
        index.append(docs)?;
        Ok(index)
    }

    /// Switch the ranking statistic (ablation). Only meaningful before
    /// the first append.
    pub fn with_statistic(mut self, statistic: SelectionStatistic) -> Self {
        self.statistic = statistic;
        self
    }

    /// Attach an observability recorder. Appends record the same
    /// `append.*` counters as [`crate::index::FacetIndex`], plus
    /// per-shard span timers (`append.shard0`, `append.shard1`, …; the
    /// shard workers run on their own threads, so their spans are roots)
    /// and `append.partition` / `append.merge` around the serial halves.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The configured shard count.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The configured options.
    pub fn options(&self) -> &PipelineOptions {
        &self.options
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Number of documents currently indexed (across all shards).
    pub fn len(&self) -> usize {
        self.n_docs
    }

    /// True if no documents have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.n_docs == 0
    }

    /// Hit/miss totals of the shared per-resource caches, in resource
    /// order. The miss counts are exactly the queries that reached the
    /// wrapped resources.
    pub fn resource_cache_stats(&self) -> Vec<CacheStats> {
        self.shared.iter().map(CachedResource::stats).collect()
    }

    /// Interner hit/miss/len counters of the merge-side vocabulary (the
    /// `intern.{hits,misses,len}` metrics the benchmarks report).
    pub fn intern_stats(&self) -> InternStats {
        self.merged_vocab.stats()
    }

    /// The current snapshot. An `Arc` clone under a short read lock,
    /// exactly as for [`crate::index::FacetIndex::snapshot`].
    pub fn snapshot(&self) -> Arc<FacetSnapshot> {
        self.snapshot.read().clone()
    }

    /// The configured ranking statistic (persisted in snapshot `meta`).
    pub(crate) fn statistic(&self) -> SelectionStatistic {
        self.statistic
    }

    /// The generation of the currently published snapshot.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Borrowed persistence view of shard `i`'s private state.
    pub(crate) fn shard_state(&self, i: usize) -> ShardStateRef<'_> {
        let s = &self.shards[i];
        ShardStateRef {
            vocab: &s.vocab,
            db: &s.db,
            cache: &s.cache,
            ctx: &s.ctx,
            important: &s.important,
            to_merged: &s.to_merged,
        }
    }

    /// Borrowed persistence view of the merge-side tables:
    /// `(merged_vocab, merged_df, merged_df_c, merged_doc_terms)`.
    pub(crate) fn merged_state(&self) -> (&Vocabulary, &[u64], &[u64], &[Vec<TermId>]) {
        (
            &self.merged_vocab,
            &self.merged_df,
            &self.merged_df_c,
            &self.merged_doc_terms,
        )
    }

    /// Install decoded state for shard `i` ([`crate::persist`] restore).
    pub(crate) fn install_shard_state(&mut self, i: usize, state: ShardState) {
        self.shards[i] = Shard {
            vocab: state.vocab,
            db: state.db,
            cache: state.cache,
            ctx: state.ctx,
            important: state.important,
            to_merged: state.to_merged,
        };
    }

    /// Install decoded merge-side state and the restored snapshot
    /// ([`crate::persist`] restore). Replaces the snapshot lock outright
    /// — a `&mut self` constructor step on an index no reader holds yet,
    /// not a publication through the lock.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn install_merged_state(
        &mut self,
        options: PipelineOptions,
        statistic: SelectionStatistic,
        merged_vocab: Vocabulary,
        merged_df: Vec<u64>,
        merged_df_c: Vec<u64>,
        merged_doc_terms: Vec<Vec<TermId>>,
        n_docs: usize,
        generation: u64,
        snapshot: FacetSnapshot,
    ) {
        self.options = options;
        self.statistic = statistic;
        self.merged_vocab = merged_vocab;
        self.merged_df = merged_df;
        self.merged_df_c = merged_df_c;
        self.merged_doc_terms = merged_doc_terms;
        self.n_docs = n_docs;
        self.generation = generation;
        self.snapshot = RwLock::new(Arc::new(snapshot));
    }

    /// The union of the shards' degraded maps (what a published merged
    /// snapshot carries); [`crate::persist`] recomputes it on restore so
    /// snapshot provenance can never drift from shard state.
    // lint:allow(string-keyed-map, reason="serving-edge degraded report; strings materialize here by design")
    pub(crate) fn merged_degraded_map(&self) -> BTreeMap<String, Vec<String>> {
        merged_degraded(&self.shards)
    }

    /// One shard's frozen read-side state for the serving tier
    /// ([`crate::serve`]): the shard's vocabulary at this instant and
    /// its contextualized per-document term rows, sorted so membership
    /// tests binary-search. Rows carry *shard-local* ids, valid only
    /// against the returned vocabulary.
    pub(crate) fn shard_read_state(
        &self,
        shard: usize,
    ) -> (facet_textkit::FrozenVocabulary, Vec<Vec<TermId>>) {
        let s = &self.shards[shard];
        let mut rows: Vec<Vec<TermId>> = s.ctx.doc_terms.clone();
        for row in &mut rows {
            row.sort_unstable();
        }
        (s.vocab.freeze(), rows)
    }

    /// Append a batch of documents and publish a new merged snapshot.
    ///
    /// Documents get global ids `len()..len()+batch.len()` and are
    /// round-robined to the shards; the per-shard pipelines (ingest,
    /// extract, expand) run in parallel, then the serial merge folds only
    /// the new documents into the merged tables before selection and
    /// subsumption re-run globally.
    ///
    /// # Errors
    /// Returns [`IndexError`] if a shard's expansion state is corrupted.
    /// The published snapshot is left untouched; the index itself should
    /// be discarded, since the failing shard may have ingested documents
    /// it could not expand.
    pub fn append(&mut self, mut batch: Vec<Document>) -> Result<ShardedAppendStats, IndexError> {
        let _append_span = self.recorder.span("append");
        _append_span.attr("docs", batch.len() as u64);
        _append_span.attr("shards", self.shards.len() as u64);
        // Capture the trace context here so worker threads (fresh span
        // stacks) can parent their shard spans under this append span.
        let trace_parent = facet_obs::current_context();
        let intern_before = self.merged_vocab.stats();
        let n = self.shards.len();
        let start = self.n_docs;
        let docs = batch.len();

        // ---- partition: round-robin by global id ------------------------
        let mut per_shard: Vec<Vec<Document>> = {
            let _span = self.recorder.span("partition");
            let mut per_shard: Vec<Vec<Document>> = (0..n).map(|_| Vec::new()).collect();
            for (i, mut d) in batch.drain(..).enumerate() {
                let g = start + i;
                d.id = DocId(g as u32);
                per_shard[g % n].push(d);
            }
            per_shard
        };
        let docs_per_shard: Vec<usize> = per_shard.iter().map(Vec::len).collect();
        let queries_before: u64 = self.shared.iter().map(|c| c.stats().misses).sum();

        // ---- parallel per-shard ingest + extract + expand ---------------
        // Splitting the configured expansion threads across shards keeps
        // the total worker count at the configured level instead of
        // multiplying it by the shard count.
        let exp = ExpansionOptions {
            threads: (self.options.expansion.threads / n).max(1),
        };
        let extractors = &self.extractors;
        let shared = &self.shared;
        let recorder = &self.recorder;
        let mut results: Vec<Option<Result<AppendOutcome, ExpansionError>>> =
            (0..n).map(|_| None).collect();
        rayon::scope(|s| {
            for ((i, shard), (docs, slot)) in self
                .shards
                .iter_mut()
                .enumerate()
                .zip(per_shard.drain(..).zip(results.iter_mut()))
            {
                let exp = exp.clone();
                s.spawn(move |_| {
                    // The worker runs on its own thread (fresh span
                    // stack), so the shard span carries the full dotted
                    // name explicitly; the captured trace context links
                    // it under the append span across the thread hop.
                    let _span = recorder.span_under(trace_parent, &format!("append.shard{i}"));
                    _span.attr("shard", i as u64);
                    _span.attr("docs", docs.len() as u64);
                    let range = shard.db.append_detached(docs, &mut shard.vocab);
                    let new_important: Vec<Vec<String>> = shard.db.docs()[range.clone()]
                        .iter()
                        .map(|d| extract_important_terms(extractors, &d.full_text()))
                        .collect();
                    let new_important = intern_important_terms(&mut shard.vocab, &new_important);
                    let resources: Vec<&dyn ContextResource> =
                        shared.iter().map(|c| c as &dyn ContextResource).collect();
                    *slot = Some(expand_append_recorded(
                        &shard.db,
                        range,
                        &new_important,
                        &resources,
                        &mut shard.vocab,
                        &exp,
                        recorder,
                        &mut shard.cache,
                        &mut shard.ctx,
                    ));
                    shard.important.extend(new_important);
                });
            }
        });
        let mut new_distinct_terms = 0;
        let mut reused_terms = 0;
        for (shard, outcome) in results.into_iter().enumerate() {
            let outcome = outcome.ok_or(IndexError::ShardIncomplete { shard })??;
            new_distinct_terms += outcome.new_distinct_terms;
            reused_terms += outcome.reused_terms;
        }

        // ---- serial merge: replay the new documents in global order -----
        {
            let _span = self.recorder.span("merge");
            // Extend the id mappings for terms the shards interned in this
            // append. Shard-order extension is deterministic because each
            // shard's interning order depends only on its own documents.
            for shard in &mut self.shards {
                self.merged_vocab
                    .extend_remap(&shard.vocab, &mut shard.to_merged);
            }
            self.merged_df.resize(self.merged_vocab.len(), 0);
            self.merged_df_c.resize(self.merged_vocab.len(), 0);
            for g in start..start + docs {
                let shard = &self.shards[g % n];
                let pos = g / n;
                for t in shard.db.doc_terms(DocId(pos as u32)) {
                    self.merged_df[shard.to_merged[t.index()].index()] += 1;
                }
                // The shard→merged mapping is injective (distinct strings
                // map to distinct merged ids), so sorting suffices.
                let mut terms: Vec<TermId> = shard.ctx.doc_terms[pos]
                    .iter()
                    .map(|t| shard.to_merged[t.index()])
                    .collect();
                terms.sort_unstable();
                for t in &terms {
                    self.merged_df_c[t.index()] += 1;
                }
                self.merged_doc_terms.push(terms);
            }
            self.n_docs += docs;
        }

        // ---- global ranking + publish -----------------------------------
        // One freeze per publish: ranking, forest, and snapshot share it.
        let frozen = self.merged_vocab.freeze();
        let (candidates, forest) = rank_and_build_forest(
            &self.merged_df,
            &self.merged_df_c,
            self.n_docs as u64,
            &self.merged_doc_terms,
            &frozen,
            self.statistic,
            &self.options,
            &self.recorder,
        );
        self.generation += 1;
        {
            let _span = self.recorder.span("swap");
            let snapshot = Arc::new(FacetSnapshot::assemble(
                self.generation,
                frozen,
                Arc::new(self.merged_doc_terms.clone()),
                candidates,
                forest,
                Arc::new(merged_degraded(&self.shards)),
            ));
            *self.snapshot.write() = snapshot;
        }

        let queries_after: u64 = self.shared.iter().map(|c| c.stats().misses).sum();
        let intern_after = self.merged_vocab.stats();
        self.recorder
            .add("intern.hits", intern_after.hits - intern_before.hits);
        self.recorder
            .add("intern.misses", intern_after.misses - intern_before.misses);
        self.recorder
            .add("intern.len", (intern_after.len - intern_before.len) as u64);
        self.recorder.add("append.docs", docs as u64);
        self.recorder
            .add("append.new_distinct_terms", new_distinct_terms as u64);
        self.recorder
            .add("append.reused_terms", reused_terms as u64);
        self.recorder.incr("append.snapshot_swaps");

        Ok(ShardedAppendStats {
            docs,
            docs_per_shard,
            new_distinct_terms,
            reused_terms,
            resource_queries: queries_after - queries_before,
            generation: self.generation,
        })
    }

    /// Backfill pass over degraded-coverage terms, the sharded
    /// counterpart of [`crate::index::FacetIndex::repair`].
    ///
    /// Each shard re-queries its own degraded terms serially in shard
    /// order (through the shared per-resource caches, so a term degraded
    /// in several shards reaches the wrapped resource once) and
    /// recomputes exactly the shard-local documents that use a
    /// re-resolved term. The merged `df_C` table and per-document rows
    /// are then rebuilt by replaying every document in global id order —
    /// O(corpus), acceptable for a rare backfill — and selection and
    /// subsumption re-run globally before a new snapshot is published.
    /// The merged df table over `D` is untouched: repair never changes
    /// the corpus itself.
    ///
    /// Stats sum over shards, so a term degraded in `k` shards
    /// contributes `k` to `requeried_terms`. With no degradation
    /// outstanding this is a no-op and no snapshot is published.
    ///
    /// # Errors
    /// Returns [`IndexError`] if a shard's repair state is corrupted; the
    /// published snapshot is untouched.
    pub fn repair(&mut self) -> Result<RepairStats, IndexError> {
        let _span = self.recorder.span("repair");
        let resources: Vec<&dyn ContextResource> = self
            .shared
            .iter()
            .map(|c| c as &dyn ContextResource)
            .collect();
        let mut totals = RepairStats::default();
        for shard in self.shards.iter_mut() {
            let outcome = repair_degraded_recorded(
                &shard.db,
                &shard.important,
                &resources,
                &mut shard.vocab,
                &self.recorder,
                &mut shard.cache,
                &mut shard.ctx,
            )?;
            totals.requeried_terms += outcome.requeried_terms;
            totals.repaired_terms += outcome.repaired_terms;
            totals.still_degraded += outcome.still_degraded;
            totals.changed_docs += outcome.changed_docs;
        }
        if totals.requeried_terms == 0 {
            totals.generation = self.generation;
            return Ok(totals);
        }

        // ---- rebuild merged C(D) state by global-order replay ------------
        {
            let _span = self.recorder.span("merge");
            for shard in &mut self.shards {
                self.merged_vocab
                    .extend_remap(&shard.vocab, &mut shard.to_merged);
            }
            self.merged_df.resize(self.merged_vocab.len(), 0);
            self.merged_df_c.clear();
            self.merged_df_c.resize(self.merged_vocab.len(), 0);
            self.merged_doc_terms.clear();
            let n = self.shards.len();
            for g in 0..self.n_docs {
                let shard = &self.shards[g % n];
                let pos = g / n;
                let mut terms: Vec<TermId> = shard.ctx.doc_terms[pos]
                    .iter()
                    .map(|t| shard.to_merged[t.index()])
                    .collect();
                terms.sort_unstable();
                for t in &terms {
                    self.merged_df_c[t.index()] += 1;
                }
                self.merged_doc_terms.push(terms);
            }
        }

        // ---- global ranking + publish -----------------------------------
        let frozen = self.merged_vocab.freeze();
        let (candidates, forest) = rank_and_build_forest(
            &self.merged_df,
            &self.merged_df_c,
            self.n_docs as u64,
            &self.merged_doc_terms,
            &frozen,
            self.statistic,
            &self.options,
            &self.recorder,
        );
        self.generation += 1;
        {
            let _span = self.recorder.span("swap");
            let snapshot = Arc::new(FacetSnapshot::assemble(
                self.generation,
                frozen,
                Arc::new(self.merged_doc_terms.clone()),
                candidates,
                forest,
                Arc::new(merged_degraded(&self.shards)),
            ));
            *self.snapshot.write() = snapshot;
        }
        self.recorder.incr("repair.snapshot_swaps");
        totals.generation = self.generation;
        Ok(totals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::FacetIndex;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct FixedExtractor;
    impl TermExtractor for FixedExtractor {
        fn name(&self) -> &'static str {
            "Fixed"
        }
        fn extract(&self, text: &str) -> Vec<String> {
            let mut out = Vec::new();
            for entity in ["jacques chirac", "angela merkel", "tony blair"] {
                let needle: String = entity
                    .split(' ')
                    .map(|w| {
                        let mut c = w.chars();
                        c.next()
                            .map(|f| f.to_uppercase().to_string())
                            .unwrap_or_default()
                            + c.as_str()
                    })
                    .collect::<Vec<_>>()
                    .join(" ");
                if text.contains(&needle) {
                    out.push(entity.to_string());
                }
            }
            out
        }
    }

    struct CountingResource {
        map: HashMap<&'static str, Vec<&'static str>>,
        queries: AtomicUsize,
    }
    impl CountingResource {
        fn new() -> Self {
            let mut map = HashMap::new();
            map.insert("jacques chirac", vec!["political leaders", "france"]);
            map.insert("angela merkel", vec!["political leaders", "germany"]);
            map.insert("tony blair", vec!["political leaders", "britain"]);
            Self {
                map,
                queries: AtomicUsize::new(0),
            }
        }
    }
    impl ContextResource for CountingResource {
        fn name(&self) -> &'static str {
            "Counting"
        }
        fn context_terms(&self, term: &str) -> Vec<String> {
            self.queries.fetch_add(1, Ordering::SeqCst);
            self.map
                .get(term)
                .map(|v| v.iter().map(|s| s.to_string()).collect())
                .unwrap_or_default()
        }
    }

    fn corpus(n: usize) -> Vec<Document> {
        let texts = [
            "Jacques Chirac discussed matters with advisers in the capital.",
            "Angela Merkel spoke with ministers about the budget.",
            "Tony Blair met union leaders over the strike.",
            "Jacques Chirac and Angela Merkel held a joint summit briefing.",
        ];
        (0..n)
            .map(|i| Document {
                id: DocId(i as u32),
                source: 0,
                day: 0,
                title: "Story".into(),
                text: texts[i % texts.len()].into(),
            })
            .collect()
    }

    fn options() -> PipelineOptions {
        PipelineOptions {
            top_k: 20,
            ..Default::default()
        }
    }

    /// String-level view of a snapshot: (term, df, df_c, score bits) rows
    /// plus forest edges by label.
    type SnapshotView = (Vec<(String, u64, u64, String)>, Vec<(String, String)>);

    fn outputs(snap: &FacetSnapshot) -> SnapshotView {
        let rows = snap
            .candidates()
            .iter()
            .map(|c| {
                (
                    snap.vocab().term(c.term).to_string(),
                    c.df,
                    c.df_c,
                    format!("{:x}", c.score.to_bits()),
                )
            })
            .collect();
        (rows, snap.forest().edges())
    }

    #[test]
    fn empty_index_has_generation_zero() {
        let e = FixedExtractor;
        let r = CountingResource::new();
        let index = ShardedFacetIndex::new(4, vec![&e], vec![&r], options());
        assert!(index.is_empty());
        assert_eq!(index.n_shards(), 4);
        assert_eq!(index.snapshot().generation(), 0);
    }

    #[test]
    fn zero_shards_clamped_to_one() {
        let e = FixedExtractor;
        let r = CountingResource::new();
        let index = ShardedFacetIndex::new(0, vec![&e], vec![&r], options());
        assert_eq!(index.n_shards(), 1);
    }

    #[test]
    fn round_robin_partition_is_even() {
        let e = FixedExtractor;
        let r = CountingResource::new();
        let mut index = ShardedFacetIndex::new(3, vec![&e], vec![&r], options());
        let stats = index.append(corpus(8)).unwrap();
        assert_eq!(stats.docs, 8);
        assert_eq!(stats.docs_per_shard, vec![3, 3, 2]);
        assert_eq!(index.len(), 8);
        // A second append keeps the global round-robin going: doc 8 → shard 2.
        let stats = index.append(corpus(1)).unwrap();
        assert_eq!(stats.docs_per_shard, vec![0, 0, 1]);
    }

    #[test]
    fn sharded_matches_unsharded_for_all_shard_counts() {
        let e = FixedExtractor;
        let r = CountingResource::new();
        let batch = FacetIndex::build(corpus(24), vec![&e], vec![&r], options()).unwrap();
        let expected = outputs(&batch.snapshot());
        assert!(!expected.0.is_empty(), "the corpus must yield facet terms");
        for n in [1, 2, 3, 4, 8] {
            let r = CountingResource::new();
            let sharded =
                ShardedFacetIndex::build(corpus(24), n, vec![&e], vec![&r], options()).unwrap();
            assert_eq!(
                outputs(&sharded.snapshot()),
                expected,
                "{n} shards must match the unsharded index"
            );
        }
    }

    #[test]
    fn incremental_sharded_appends_match_one_shot() {
        let e = FixedExtractor;
        let r = CountingResource::new();
        let one_shot =
            ShardedFacetIndex::build(corpus(24), 3, vec![&e], vec![&r], options()).unwrap();
        let r2 = CountingResource::new();
        let mut incremental = ShardedFacetIndex::new(3, vec![&e], vec![&r2], options());
        let docs = corpus(24);
        for chunk in docs.chunks(7) {
            incremental.append(chunk.to_vec()).unwrap();
        }
        assert_eq!(incremental.snapshot().generation(), 4);
        assert_eq!(
            outputs(&incremental.snapshot()),
            outputs(&one_shot.snapshot())
        );
    }

    #[test]
    fn shared_cache_deduplicates_across_shards() {
        // All three entities appear in documents of every shard, yet the
        // wrapped resource must be queried exactly once per entity.
        let e = FixedExtractor;
        let r = CountingResource::new();
        let mut index = ShardedFacetIndex::new(4, vec![&e], vec![&r], options());
        let stats = index.append(corpus(16)).unwrap();
        assert_eq!(r.queries.load(Ordering::SeqCst), 3);
        assert_eq!(stats.resource_queries, 3);
        // Per-shard caches each discovered the terms independently…
        assert!(stats.new_distinct_terms >= 3);
        // …and the shared cache absorbed every duplicate.
        let cache = &index.resource_cache_stats()[0];
        assert_eq!(cache.misses, 3);
        assert_eq!(
            cache.hits + cache.misses,
            stats.new_distinct_terms as u64,
            "every per-shard resolution went through the shared cache"
        );

        // A later append re-resolves nothing.
        let stats = index.append(corpus(4)).unwrap();
        assert_eq!(stats.resource_queries, 0);
        assert_eq!(r.queries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn sharded_repair_converges_across_shard_counts() {
        let e = FixedExtractor;
        let r = CountingResource::new();
        let clean = FacetIndex::build(corpus(24), vec![&e], vec![&r], options()).unwrap();
        let expected = outputs(&clean.snapshot());
        for n in [1, 2, 3, 4] {
            let faulty = facet_resources::FaultyResource::new(
                CountingResource::new(),
                facet_resources::FaultPlan::seeded(7, 1000),
                facet_resources::VirtualClock::new(),
            );
            let mut sharded =
                ShardedFacetIndex::build(corpus(24), n, vec![&e], vec![&faulty], options())
                    .unwrap();
            let snap = sharded.snapshot();
            assert!(!snap.is_fully_covered(), "{n} shards: build saw faults");
            assert_eq!(snap.degraded().len(), 3, "all three entities degraded");

            faulty.heal();
            let stats = sharded.repair().unwrap();
            assert!(stats.repaired_terms >= 3, "{n} shards: {stats:?}");
            assert_eq!(stats.still_degraded, 0);
            let repaired = sharded.snapshot();
            assert!(repaired.is_fully_covered());
            assert_eq!(
                outputs(&repaired),
                expected,
                "{n} shards: repaired snapshot must match the fault-free build"
            );

            // Idempotent once converged.
            let stats = sharded.repair().unwrap();
            assert_eq!(stats.requeried_terms, 0);
            assert_eq!(stats.generation, repaired.generation());
        }
    }

    #[test]
    fn append_records_per_shard_spans() {
        let e = FixedExtractor;
        let r = CountingResource::new();
        let recorder = Recorder::enabled();
        let mut index = ShardedFacetIndex::new(2, vec![&e], vec![&r], options())
            .with_recorder(recorder.clone());
        index.append(corpus(8)).unwrap();
        let counts = recorder.snapshot_counts_only();
        assert_eq!(counts["span.append.count"], 1);
        assert_eq!(counts["span.append.partition.count"], 1);
        assert_eq!(counts["span.append.shard0.count"], 1);
        assert_eq!(counts["span.append.shard1.count"], 1);
        assert_eq!(counts["span.append.merge.count"], 1);
        assert_eq!(counts["span.append.select.count"], 1);
        assert_eq!(counts["span.append.subsumption.count"], 1);
        assert_eq!(counts["span.append.swap.count"], 1);
        assert_eq!(counts["counter.append.docs"], 8);
        assert_eq!(counts["counter.append.snapshot_swaps"], 1);
    }

    /// Tracing across the rayon thread hop: shard worker spans must be
    /// parented under the `append` root span via the captured
    /// [`facet_obs::SpanContext`], so the trace tree is structurally
    /// deterministic even though workers run on their own threads.
    #[test]
    fn traced_append_parents_shard_spans_under_append() {
        use facet_obs::{TickClock, Tracer, TracerConfig};
        let e = FixedExtractor;
        let r = CountingResource::new();
        let tracer = Tracer::with_clock(
            TracerConfig::default(),
            std::sync::Arc::new(TickClock::new()),
        );
        let recorder = Recorder::traced(tracer);
        let mut index = ShardedFacetIndex::new(2, vec![&e], vec![&r], options())
            .with_recorder(recorder.clone());
        index.append(corpus(8)).unwrap();
        let traces = recorder.tracer().unwrap().finished();
        assert_eq!(traces.len(), 1, "one root trace per append");
        let t = &traces[0];
        let root = t
            .spans
            .iter()
            .find(|s| s.name == "append" && s.parent.is_none())
            .expect("append root span");
        for shard in ["append.shard0", "append.shard1"] {
            let s = t
                .spans
                .iter()
                .find(|s| s.name == shard)
                .unwrap_or_else(|| panic!("{shard} span missing"));
            assert_eq!(s.parent, Some(root.id), "{shard} parented under append");
        }
        // The serial stages nest in the same trace.
        for stage in ["partition", "merge", "select", "subsumption", "swap"] {
            assert!(
                t.spans.iter().any(|s| s.name == stage),
                "{stage} span missing"
            );
        }
    }

    #[test]
    fn snapshots_are_isolated_from_later_appends() {
        let e = FixedExtractor;
        let r = CountingResource::new();
        let mut index =
            ShardedFacetIndex::build(corpus(8), 2, vec![&e], vec![&r], options()).unwrap();
        let old = index.snapshot();
        let old_rows = outputs(&old);
        index.append(corpus(8)).unwrap();
        assert_eq!(outputs(&old), old_rows, "frozen snapshot unchanged");
        assert!(index.snapshot().generation() > old.generation());
        assert_eq!(index.snapshot().n_docs(), 16);
    }

    #[test]
    fn browse_engine_sees_global_doc_order() {
        let e = FixedExtractor;
        let r = CountingResource::new();
        let index = ShardedFacetIndex::build(corpus(12), 3, vec![&e], vec![&r], options()).unwrap();
        let snap = index.snapshot();
        let engine = snap.browse();
        assert_eq!(engine.n_docs(), 12);
        // "france" comes from chirac docs: global ids 0, 3, 4, 7, 8, 11
        // (texts cycle with period 4; chirac appears in texts 0 and 3).
        let france = snap.vocab().get("france").unwrap();
        let docs = engine.docs_with(france);
        let ids: Vec<u32> = docs.iter().map(|d| d.0).collect();
        assert_eq!(ids, vec![0, 3, 4, 7, 8, 11]);
    }
}
