//! Evidence-combination hierarchy construction.
//!
//! The paper uses Sanderson–Croft subsumption and remarks that "newer
//! algorithms [Snow, Jurafsky & Ng 2006] may give even better results"
//! (end of Section IV). Snow et al.'s idea is to combine *multiple
//! sources of evidence* for each candidate hypernym edge instead of
//! relying on one statistic. This module implements that extension:
//!
//! * **co-occurrence evidence** — the subsumption conditional `P(x|y)`
//!   from document co-occurrence, as in the base algorithm;
//! * **resource evidence** — external hints that `x` is a generalization
//!   of `y` (e.g., `x` appears among a resource's context terms for `y`,
//!   or `x` is a WordNet hypernym of `y`).
//!
//! Each potential parent is scored `w_cooc · P(x|y) + w_resource ·
//! hint(y→x)`; a term attaches to its best-scoring parent above a
//! combined threshold. Resource hints break the ties that pure
//! co-occurrence cannot (two terms that always travel together), so the
//! ablation benchmark (`experiments ablation`) shows the placement gain.

use crate::subsumption::{SubsumptionForest, SubsumptionParams};
use facet_textkit::TermId;
use std::collections::{HashMap, HashSet};

/// Weights for combining the evidence sources.
#[derive(Debug, Clone, Copy)]
pub struct EvidenceParams {
    /// Base subsumption parameters (threshold applies to `P(x|y)`).
    pub subsumption: SubsumptionParams,
    /// Weight of the co-occurrence conditional.
    pub w_cooccurrence: f64,
    /// Weight of a resource hint.
    pub w_resource: f64,
    /// Minimum combined score for an edge to be accepted.
    pub min_score: f64,
}

impl Default for EvidenceParams {
    fn default() -> Self {
        Self {
            subsumption: SubsumptionParams::default(),
            w_cooccurrence: 0.6,
            w_resource: 0.4,
            min_score: 0.55,
        }
    }
}

/// Directed hypernym hints: `(child, parent)` pairs asserted by external
/// resources.
#[derive(Debug, Default, Clone)]
pub struct HypernymHints {
    edges: HashSet<(TermId, TermId)>,
}

impl HypernymHints {
    /// Create an empty hint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assert that `parent` generalizes `child`.
    pub fn add(&mut self, child: TermId, parent: TermId) {
        self.edges.insert((child, parent));
    }

    /// Whether the hint `(child → parent)` exists.
    pub fn contains(&self, child: TermId, parent: TermId) -> bool {
        self.edges.contains(&(child, parent))
    }

    /// Number of hints.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no hints are present.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Build a hierarchy over `terms` combining co-occurrence subsumption
/// with resource hints.
pub fn build_evidence_forest(
    terms: &[TermId],
    doc_terms: &[Vec<TermId>],
    hints: &HypernymHints,
    params: EvidenceParams,
) -> SubsumptionForest {
    let term_pos: HashMap<TermId, usize> = terms.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let n = terms.len();

    let mut df = vec![0u64; n];
    let mut co: HashMap<(usize, usize), u64> = HashMap::new();
    for d in doc_terms {
        let present: Vec<usize> = d.iter().filter_map(|t| term_pos.get(t).copied()).collect();
        for &i in &present {
            df[i] += 1;
        }
        for (a, &i) in present.iter().enumerate() {
            for &j in present.iter().skip(a + 1) {
                let key = if i < j { (i, j) } else { (j, i) };
                *co.entry(key).or_insert(0) += 1;
            }
        }
    }
    let co_df = |i: usize, j: usize| -> u64 {
        let key = if i < j { (i, j) } else { (j, i) };
        co.get(&key).copied().unwrap_or(0)
    };

    let sp = params.subsumption;
    let max_parent_df = (sp.max_parent_df_fraction * doc_terms.len() as f64).ceil() as u64;
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for y in 0..n {
        if df[y] == 0 {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for x in 0..n {
            if x == y || df[x] == 0 || df[x] > max_parent_df {
                continue;
            }
            if (df[x] as f64) < sp.min_generality_ratio * df[y] as f64 {
                continue;
            }
            let cxy = co_df(x, y);
            let p_x_given_y = cxy as f64 / df[y] as f64;
            let p_y_given_x = cxy as f64 / df[x] as f64;
            if p_y_given_x >= 1.0 {
                continue;
            }
            let base_rate = df[x] as f64 / doc_terms.len().max(1) as f64;
            let lift = if base_rate > 0.0 {
                p_x_given_y / base_rate
            } else {
                f64::INFINITY
            };
            let hinted = hints.contains(terms[y], terms[x]);
            // Without a hint, the base guards must hold; a hint can carry
            // an edge over the lift guard (the resource *knows* the
            // relation) but never over the raw threshold.
            if p_x_given_y < sp.threshold {
                continue;
            }
            if !hinted && lift < sp.min_lift {
                continue;
            }
            let score = params.w_cooccurrence * p_x_given_y
                + params.w_resource * f64::from(u8::from(hinted));
            if score < params.min_score {
                continue;
            }
            let better = match best {
                None => true,
                Some((b, bs)) => {
                    score > bs + 1e-12 || ((score - bs).abs() <= 1e-12 && df[x] < df[b])
                }
            };
            if better {
                best = Some((x, score));
            }
        }
        parent[y] = best.map(|(x, _)| x);
    }

    // Cycle breaking, as in the base algorithm.
    for start in 0..n {
        let mut seen = vec![false; n];
        let mut cur = start;
        while let Some(p) = parent[cur] {
            if seen[p] {
                parent[cur] = None;
                break;
            }
            seen[cur] = true;
            cur = p;
        }
    }

    SubsumptionForest {
        terms: terms.to_vec(),
        parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two plausible parents with identical co-occurrence; the hint must
    /// decide.
    #[test]
    fn hints_break_cooccurrence_ties() {
        let child = TermId(0);
        let right = TermId(1);
        let wrong = TermId(2);
        // child co-occurs fully with both candidates; both have df 6 vs
        // child's 3 (generality satisfied); lift is equal.
        let mut docs = vec![
            vec![child, right, wrong],
            vec![child, right, wrong],
            vec![child, right, wrong],
        ];
        for _ in 0..3 {
            docs.push(vec![right, wrong]);
        }
        for _ in 0..4 {
            docs.push(vec![]); // padding so parents stay under the df cap
        }
        let mut hints = HypernymHints::new();
        hints.add(child, right);
        let forest = build_evidence_forest(
            &[child, right, wrong],
            &docs,
            &hints,
            EvidenceParams::default(),
        );
        assert_eq!(
            forest.parent[0],
            Some(1),
            "hint must select the right parent"
        );
    }

    #[test]
    fn no_hints_degenerates_to_subsumption_like_forest() {
        let a = TermId(0);
        let b = TermId(1);
        let docs = vec![vec![a, b], vec![a, b], vec![a], vec![a], vec![], vec![]];
        let forest = build_evidence_forest(
            &[a, b],
            &docs,
            &HypernymHints::new(),
            EvidenceParams::default(),
        );
        // b always occurs with a; a is more general: a parents b.
        assert_eq!(forest.parent[1], Some(0));
        assert_eq!(forest.parent[0], None);
    }

    #[test]
    fn hint_cannot_override_low_cooccurrence() {
        let a = TermId(0);
        let b = TermId(1);
        // b rarely co-occurs with a: a hint alone must not create the edge.
        let docs = vec![vec![a, b], vec![a], vec![a], vec![b], vec![b], vec![b]];
        let mut hints = HypernymHints::new();
        hints.add(b, a);
        let forest = build_evidence_forest(&[a, b], &docs, &hints, EvidenceParams::default());
        assert_eq!(forest.parent[1], None, "hint must not override the data");
    }

    #[test]
    fn empty_everything() {
        let forest =
            build_evidence_forest(&[], &[], &HypernymHints::new(), EvidenceParams::default());
        assert!(forest.terms.is_empty());
    }
}
