//! The persistent, incrementally-updatable facet index.
//!
//! The paper's MNYT experiment (Section V) is a *growing* archive: the
//! corpus expands month by month, yet the one-shot pipeline recomputes
//! Steps 1–4 from scratch on every run. [`FacetIndex`] keeps the full
//! pipeline state alive between updates:
//!
//! * the appendable [`TextDatabase`] with its delta-maintained df table,
//! * the shared [`Vocabulary`],
//! * the per-document important terms `I(d)`,
//! * the cross-batch [`ExpansionCache`] of resolved important terms,
//! * the contextualized database `C(D)` with its delta-maintained `df_C`
//!   table, and
//! * the current [`FacetSnapshot`].
//!
//! [`FacetIndex::append`] ingests a batch of new documents by
//! re-extracting *only the new documents*, resolving *only
//! newly-distinct* important terms against the resources, delta-updating
//! both frequency tables, and re-running selection + subsumption over the
//! updated tables. Each append atomically swaps in a fresh
//! [`FacetSnapshot`] — an immutable, `Arc`-shared view that browse
//! engines and evaluation harnesses read lock-free while further appends
//! proceed.
//!
//! **Equivalence invariant:** appending a corpus in any batch partition
//! yields a snapshot whose facet terms, rankings, and hierarchies are
//! identical (as strings) to one batch build of the whole corpus. Term
//! *ids* may differ between partitions — context terms interleave with
//! later batches' corpus terms — which is why ranking uses
//! [`select_facet_terms_stable`] (string tie-breaks) and every other
//! stage is id-order-independent by construction.

use crate::browse::BrowseEngine;
use crate::config::PipelineOptions;
use crate::hierarchy::FacetForest;
use crate::selection::{
    select_facet_terms_stable, FacetCandidate, SelectionInputs, SelectionStatistic,
};
use crate::subsumption::{build_subsumption_forest, SubsumptionParams};
use facet_corpus::db::TermingOptions;
use facet_corpus::{DocId, Document, TextDatabase};
use facet_obs::Recorder;
use facet_resources::{
    expand_append_recorded, intern_important_terms, repair_degraded_recorded, ContextResource,
    ContextualizedDatabase, ExpansionCache, ExpansionError,
};
use facet_termx::{extract_important_terms, TermExtractor};
use facet_textkit::{FrozenVocabulary, InternStats, TermId, Vocabulary};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A failure while updating a facet index.
///
/// Appends validate their internal state (document ranges, per-document
/// term alignment) before touching the published snapshot; a corrupted
/// range surfaces as a typed error to the caller instead of aborting a
/// serving process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The expansion layer rejected the append: the document range or
    /// the per-document important-term lists do not line up with the
    /// index's contextualized state.
    Expansion(ExpansionError),
    /// A shard worker terminated without filling its result slot
    /// (sharded appends only); the published snapshot is untouched.
    ShardIncomplete {
        /// Index of the shard whose outcome never arrived.
        shard: usize,
    },
    /// The durability layer rejected a persistence operation (see
    /// [`crate::persist`]): a snapshot publish or WAL append failed, so
    /// the in-memory index and the on-disk state may have diverged.
    Store(facet_store::StoreError),
    /// A [`crate::serve::FacetServer::reopen`] presented a recovered
    /// index older than the currently published generation; serving it
    /// would move readers backwards in time.
    StaleReopen {
        /// The generation readers currently see.
        published: u64,
        /// The stale generation the recovered index carries.
        recovered: u64,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Expansion(e) => write!(f, "index append rejected: {e}"),
            IndexError::ShardIncomplete { shard } => {
                write!(f, "index append aborted: shard {shard} produced no outcome")
            }
            IndexError::Store(e) => write!(f, "index persistence failed: {e}"),
            IndexError::StaleReopen {
                published,
                recovered,
            } => write!(
                f,
                "reopen rejected: recovered generation {recovered} is older than \
                 the published generation {published}"
            ),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Expansion(e) => Some(e),
            IndexError::Store(e) => Some(e),
            IndexError::ShardIncomplete { .. } | IndexError::StaleReopen { .. } => None,
        }
    }
}

impl From<ExpansionError> for IndexError {
    fn from(e: ExpansionError) -> Self {
        IndexError::Expansion(e)
    }
}

impl From<facet_store::StoreError> for IndexError {
    fn from(e: facet_store::StoreError) -> Self {
        IndexError::Store(e)
    }
}

/// An immutable view of the index at one generation.
///
/// Snapshots are what readers hold: obtaining one is an `Arc` clone under
/// a short read lock, and everything inside is frozen — the vocabulary is
/// a [`FrozenVocabulary`], the per-document term sets are `Arc`-shared
/// with any [`BrowseEngine`] built from the snapshot, and no method takes
/// `&mut`. A snapshot stays valid (and cheap to query) no matter how many
/// appends land after it was taken.
#[derive(Debug)]
pub struct FacetSnapshot {
    generation: u64,
    vocab: FrozenVocabulary,
    doc_terms: Arc<Vec<Vec<TermId>>>,
    candidates: Vec<FacetCandidate>,
    forest: FacetForest,
    /// Degraded-coverage provenance at this generation: important term →
    /// resources that failed while resolving it. Empty for a fault-free
    /// build and after a complete [`FacetIndex::repair`].
    // lint:allow(string-keyed-map, reason="serving-edge degraded report; strings materialize here by design")
    degraded: Arc<BTreeMap<String, Vec<String>>>,
}

impl FacetSnapshot {
    /// The append generation this snapshot was taken at (0 = empty index,
    /// incremented once per [`FacetIndex::append`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of documents in the snapshot.
    pub fn n_docs(&self) -> usize {
        self.doc_terms.len()
    }

    /// The frozen vocabulary: resolves every term id appearing in this
    /// snapshot, unaffected by later appends.
    pub fn vocab(&self) -> &FrozenVocabulary {
        &self.vocab
    }

    /// The ranked candidate facet terms.
    pub fn candidates(&self) -> &[FacetCandidate] {
        &self.candidates
    }

    /// The candidate facet terms as strings, in rank order.
    pub fn facet_terms(&self) -> Vec<&str> {
        self.candidates
            .iter()
            .map(|c| self.vocab.term(c.term))
            .collect()
    }

    /// The facet hierarchies.
    pub fn forest(&self) -> &FacetForest {
        &self.forest
    }

    /// Degraded-coverage provenance: for every important term whose
    /// resolution is missing at least one resource's answer, the names of
    /// the failed resources. Empty when coverage is complete.
    // lint:allow(string-keyed-map, reason="serving-edge degraded report; strings materialize here by design")
    pub fn degraded(&self) -> &BTreeMap<String, Vec<String>> {
        &self.degraded
    }

    /// True when no term resolution in this snapshot is missing a
    /// resource's answer.
    pub fn is_fully_covered(&self) -> bool {
        self.degraded.is_empty()
    }

    /// The contextualized per-document term sets (sorted, distinct),
    /// shared with any browse engine built from this snapshot.
    pub fn doc_terms(&self) -> &Arc<Vec<Vec<TermId>>> {
        &self.doc_terms
    }

    /// Build a [`BrowseEngine`] over this snapshot. The engine shares the
    /// snapshot's document state (no copy of the term sets) and is
    /// entirely read-only — the OLAP-style slice/dice/pivot path never
    /// sees a `&mut Vocabulary`.
    pub fn browse(&self) -> BrowseEngine {
        BrowseEngine::from_shared(self.forest.clone(), Arc::clone(&self.doc_terms))
    }

    /// An FNV-1a digest over the snapshot's canonical *string* view:
    /// the generation, every candidate row (term, df, `df_C`, score
    /// bits), every forest edge, the degraded-coverage map, and every
    /// per-document contextualized term set rendered through the frozen
    /// vocabulary. Term *ids* never enter the hash, so two snapshots
    /// digest equal exactly when they are string-identical — the
    /// byte-identity criterion `tests/recovery.rs` holds crash recovery
    /// to, regardless of interning order.
    pub fn digest(&self) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        eat(&self.generation.to_le_bytes());
        for c in &self.candidates {
            eat(b"c\x1f");
            eat(self.vocab.try_term(c.term).unwrap_or("").as_bytes());
            eat(&c.df.to_le_bytes());
            eat(&c.df_c.to_le_bytes());
            eat(&c.score.to_bits().to_le_bytes());
        }
        for (parent, child) in self.forest.edges() {
            eat(b"e\x1f");
            eat(parent.as_bytes());
            eat(b"\x1f");
            eat(child.as_bytes());
        }
        for (term, failed) in self.degraded.iter() {
            eat(b"d\x1f");
            eat(term.as_bytes());
            for f in failed {
                eat(b"\x1f");
                eat(f.as_bytes());
            }
        }
        for row in self.doc_terms.iter() {
            eat(b"r");
            for t in row {
                eat(b"\x1f");
                eat(self.vocab.try_term(*t).unwrap_or("").as_bytes());
            }
        }
        hash
    }

    /// Assemble a snapshot from its parts. Crate-internal: the sharded
    /// index publishes merged snapshots through the same type.
    pub(crate) fn assemble(
        generation: u64,
        vocab: FrozenVocabulary,
        doc_terms: Arc<Vec<Vec<TermId>>>,
        candidates: Vec<FacetCandidate>,
        forest: FacetForest,
        // lint:allow(string-keyed-map, reason="serving-edge degraded report; strings materialize here by design")
        degraded: Arc<BTreeMap<String, Vec<String>>>,
    ) -> Self {
        Self {
            generation,
            vocab,
            doc_terms,
            candidates,
            forest,
            degraded,
        }
    }
}

/// Re-run Steps 3–4 (selection + subsumption) over up-to-date frequency
/// tables and materialize the ranked candidates and hierarchy forest.
///
/// This is the post-update half of every index publish, shared by
/// [`FacetIndex::append`] and the sharded merge path
/// ([`crate::shard::ShardedFacetIndex`]) so the two cannot drift apart:
/// given string-equal tables (`df`, `df_c`, `n_docs`, per-document term
/// sets), both produce string-identical candidates and forests
/// regardless of term-id assignment.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rank_and_build_forest(
    df: &[u64],
    df_c: &[u64],
    n_docs: u64,
    doc_terms: &[Vec<TermId>],
    vocab: &FrozenVocabulary,
    statistic: SelectionStatistic,
    options: &PipelineOptions,
    recorder: &Recorder,
) -> (Vec<FacetCandidate>, FacetForest) {
    let candidates = {
        let _span = recorder.span("select");
        select_facet_terms_stable(
            SelectionInputs { df, df_c, n_docs },
            statistic,
            options.top_k,
            options.min_df_c,
            vocab.as_vocabulary(),
        )
    };
    let forest = {
        let _span = recorder.span("subsumption");
        let terms: Vec<TermId> = candidates.iter().map(|c| c.term).collect();
        let sub = build_subsumption_forest(
            &terms,
            doc_terms,
            SubsumptionParams {
                threshold: options.subsumption_threshold,
                ..Default::default()
            },
        );
        FacetForest::from_subsumption(&sub, vocab, |t| df_c.get(t.index()).copied().unwrap_or(0))
    };
    (candidates, forest)
}

/// What one [`FacetIndex::append`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendStats {
    /// Documents ingested by this append.
    pub docs: usize,
    /// Important terms resolved against the resources for the first time.
    pub new_distinct_terms: usize,
    /// Distinct important terms of this batch answered from the
    /// cross-batch cache (resource queries saved per resource).
    pub reused_terms: usize,
    /// Resource queries issued (`new_distinct_terms × resources`).
    pub resource_queries: u64,
    /// Freshly-resolved terms whose coverage is degraded (at least one
    /// resource failed during resolution); see [`FacetSnapshot::degraded`]
    /// and [`FacetIndex::repair`].
    pub degraded_terms: usize,
    /// The generation of the snapshot this append published.
    pub generation: u64,
}

/// What one [`FacetIndex::repair`] (or
/// [`crate::shard::ShardedFacetIndex::repair`]) backfill pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairStats {
    /// Degraded terms re-queried against the resources.
    pub requeried_terms: usize,
    /// Terms whose coverage is now complete.
    pub repaired_terms: usize,
    /// Terms still degraded (their resources are still failing); a later
    /// pass can retry them.
    pub still_degraded: usize,
    /// Documents whose contextualized term rows changed.
    pub changed_docs: usize,
    /// The generation of the published snapshot after the pass (unchanged
    /// when there was nothing to re-query).
    pub generation: u64,
}

impl AppendStats {
    /// Fraction of this batch's distinct important terms served from the
    /// cross-batch cache (0.0 for the first batch or an empty batch).
    pub fn cache_reuse_ratio(&self) -> f64 {
        let total = self.new_distinct_terms + self.reused_terms;
        if total == 0 {
            0.0
        } else {
            self.reused_terms as f64 / total as f64
        }
    }
}

/// The incrementally-updatable facet index.
///
/// Owns every piece of pipeline state; configured like a
/// [`crate::pipeline::FacetPipeline`] with extractors, resources, and
/// [`PipelineOptions`]. See the [module docs](self) for the lifecycle.
///
/// ```no_run
/// # use facet_core::index::FacetIndex;
/// # use facet_core::PipelineOptions;
/// # fn demo(extractors: Vec<&dyn facet_termx::TermExtractor>,
/// #         resources: Vec<&dyn facet_resources::ContextResource>,
/// #         january: Vec<facet_corpus::Document>,
/// #         february: Vec<facet_corpus::Document>)
/// #     -> Result<(), facet_core::index::IndexError> {
/// let mut index = FacetIndex::new(extractors, resources, PipelineOptions::default());
/// index.append(january)?;               // initial build
/// let snapshot = index.snapshot();      // Arc<FacetSnapshot>, lock-free reads
/// let stats = index.append(february)?;  // incremental: only new terms resolved
/// assert!(snapshot.generation() < index.snapshot().generation());
/// # Ok(())
/// # }
/// ```
pub struct FacetIndex<'a> {
    extractors: Vec<&'a dyn TermExtractor>,
    resources: Vec<&'a dyn ContextResource>,
    options: PipelineOptions,
    statistic: SelectionStatistic,
    recorder: Recorder,
    vocab: Vocabulary,
    db: TextDatabase,
    /// `I(d)` per document as interned symbols, aligned with `db`.
    important: Vec<Vec<TermId>>,
    /// Cross-batch memo of resolved important terms.
    cache: ExpansionCache,
    /// The contextualized database, delta-updated per append.
    ctx: ContextualizedDatabase,
    /// The current published snapshot, swapped atomically per append.
    snapshot: RwLock<Arc<FacetSnapshot>>,
    generation: u64,
}

impl<'a> FacetIndex<'a> {
    /// An empty index with the paper's configuration (log-likelihood
    /// ranking, default terming).
    pub fn new(
        extractors: Vec<&'a dyn TermExtractor>,
        resources: Vec<&'a dyn ContextResource>,
        options: PipelineOptions,
    ) -> Self {
        let mut vocab = Vocabulary::new();
        let db = TextDatabase::build(Vec::new(), &mut vocab, TermingOptions::default());
        let snapshot = Arc::new(FacetSnapshot {
            generation: 0,
            vocab: vocab.freeze(),
            doc_terms: Arc::new(Vec::new()),
            candidates: Vec::new(),
            forest: FacetForest::default(),
            degraded: Arc::new(BTreeMap::new()),
        });
        Self {
            extractors,
            resources,
            options,
            statistic: SelectionStatistic::LogLikelihood,
            recorder: Recorder::disabled(),
            vocab,
            db,
            important: Vec::new(),
            cache: ExpansionCache::new(),
            ctx: ContextualizedDatabase::empty(),
            snapshot: RwLock::new(snapshot),
            generation: 0,
        }
    }

    /// Build an index over an initial corpus: [`FacetIndex::new`]
    /// followed by one [`FacetIndex::append`].
    pub fn build(
        docs: Vec<Document>,
        extractors: Vec<&'a dyn TermExtractor>,
        resources: Vec<&'a dyn ContextResource>,
        options: PipelineOptions,
    ) -> Result<Self, IndexError> {
        let mut index = Self::new(extractors, resources, options);
        index.append(docs)?;
        Ok(index)
    }

    /// Switch the ranking statistic (ablation). Only meaningful before
    /// the first append.
    pub fn with_statistic(mut self, statistic: SelectionStatistic) -> Self {
        self.statistic = statistic;
        self
    }

    /// Attach an observability recorder. Appends record `append.*` spans
    /// (`ingest`, `extract`, `expand`, `select`, `subsumption`, `swap`)
    /// and counters (`append.docs`, `append.new_distinct_terms`,
    /// `append.reused_terms`, `append.snapshot_swaps`).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The configured options.
    pub fn options(&self) -> &PipelineOptions {
        &self.options
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Number of documents currently indexed.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// True if no documents have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// The underlying text database.
    pub fn database(&self) -> &TextDatabase {
        &self.db
    }

    /// The live (mutable-side) vocabulary. Readers should prefer
    /// [`FacetSnapshot::vocab`].
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The contextualized database `C(D)` in its current state.
    pub fn contextualized(&self) -> &ContextualizedDatabase {
        &self.ctx
    }

    /// Distinct important terms resolved so far (cache size).
    pub fn resolved_terms(&self) -> usize {
        self.cache.len()
    }

    /// Interner hit/miss/len counters of the live vocabulary (the
    /// `intern.{hits,misses,len}` metrics the benchmarks report).
    pub fn intern_stats(&self) -> InternStats {
        self.vocab.stats()
    }

    /// The configured ranking statistic (persisted in snapshot `meta`).
    pub(crate) fn statistic(&self) -> SelectionStatistic {
        self.statistic
    }

    /// The generation of the currently published snapshot.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// `I(d)` per document (persisted so a restored index can repair).
    pub(crate) fn important_rows(&self) -> &[Vec<TermId>] {
        &self.important
    }

    /// The cross-batch expansion cache (persisted so a restored index
    /// re-queries nothing it already resolved).
    pub(crate) fn expansion_cache(&self) -> &ExpansionCache {
        &self.cache
    }

    /// Install decoded pipeline state wholesale ([`crate::persist`]'s
    /// restore path). Replaces the snapshot lock outright — this is a
    /// `&mut self` constructor step on an index no reader holds yet, not
    /// a publication through the lock.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn install_state(
        &mut self,
        options: PipelineOptions,
        statistic: SelectionStatistic,
        vocab: Vocabulary,
        db: TextDatabase,
        important: Vec<Vec<TermId>>,
        cache: ExpansionCache,
        ctx: ContextualizedDatabase,
        generation: u64,
        snapshot: FacetSnapshot,
    ) {
        self.options = options;
        self.statistic = statistic;
        self.vocab = vocab;
        self.db = db;
        self.important = important;
        self.cache = cache;
        self.ctx = ctx;
        self.generation = generation;
        self.snapshot = RwLock::new(Arc::new(snapshot));
    }

    /// The current snapshot. An `Arc` clone under a short read lock:
    /// callers keep the returned snapshot for as long as they like,
    /// entirely unaffected by concurrent appends publishing newer
    /// generations.
    pub fn snapshot(&self) -> Arc<FacetSnapshot> {
        self.snapshot.read().clone()
    }

    /// Append a batch of documents and publish a new snapshot.
    ///
    /// Only the new documents go through Step-1 extraction; only their
    /// newly-distinct important terms are resolved against the resources
    /// (Step 2); both df tables are delta-updated; selection and
    /// subsumption (Steps 3–4) re-run over the updated tables. Documents
    /// are renumbered to positional ids — the index owns id assignment,
    /// so month batches whose ids restart from zero can be fed directly.
    ///
    /// # Errors
    /// Returns [`IndexError`] if the index's internal append state is
    /// corrupted (the expansion layer rejects the document range); the
    /// published snapshot is left untouched, so a serving process can
    /// log the error and keep answering from the previous generation.
    pub fn append(&mut self, mut batch: Vec<Document>) -> Result<AppendStats, IndexError> {
        let _append_span = self.recorder.span("append");
        _append_span.attr("docs", batch.len() as u64);
        let intern_before = self.vocab.stats();
        let start = self.db.len();
        for (i, d) in batch.iter_mut().enumerate() {
            d.id = DocId((start + i) as u32);
        }
        let docs = batch.len();
        {
            let _span = self.recorder.span("ingest");
            self.db.append(batch, &mut self.vocab);
        }

        let new_important: Vec<Vec<String>> = {
            let _span = self.recorder.span("extract");
            self.db.docs()[start..]
                .iter()
                .map(|d| extract_important_terms(&self.extractors, &d.full_text()))
                .collect()
        };

        let new_important = intern_important_terms(&mut self.vocab, &new_important);
        let outcome = {
            let _span = self.recorder.span("expand");
            expand_append_recorded(
                &self.db,
                start..self.db.len(),
                &new_important,
                &self.resources,
                &mut self.vocab,
                &self.options.expansion,
                &self.recorder,
                &mut self.cache,
                &mut self.ctx,
            )?
        };
        self.important.extend(new_important);

        let df = self.db.df_table_resized(self.vocab.len());
        // One freeze per publish: the ranking, the forest, and the
        // snapshot all share this view's arena.
        let frozen = self.vocab.freeze();
        let (candidates, forest) = rank_and_build_forest(
            &df,
            self.ctx.df_table(),
            self.db.len() as u64,
            &self.ctx.doc_terms,
            &frozen,
            self.statistic,
            &self.options,
            &self.recorder,
        );

        self.generation += 1;
        {
            let _span = self.recorder.span("swap");
            let snapshot = Arc::new(FacetSnapshot::assemble(
                self.generation,
                frozen,
                Arc::new(self.ctx.doc_terms.clone()),
                candidates,
                forest,
                Arc::new(self.ctx.degraded().clone()),
            ));
            *self.snapshot.write() = snapshot;
        }

        let intern_after = self.vocab.stats();
        self.recorder
            .add("intern.hits", intern_after.hits - intern_before.hits);
        self.recorder
            .add("intern.misses", intern_after.misses - intern_before.misses);
        self.recorder
            .add("intern.len", (intern_after.len - intern_before.len) as u64);
        self.recorder.add("append.docs", docs as u64);
        self.recorder.add(
            "append.new_distinct_terms",
            outcome.new_distinct_terms as u64,
        );
        self.recorder
            .add("append.reused_terms", outcome.reused_terms as u64);
        self.recorder.incr("append.snapshot_swaps");

        Ok(AppendStats {
            docs,
            new_distinct_terms: outcome.new_distinct_terms,
            reused_terms: outcome.reused_terms,
            resource_queries: (outcome.new_distinct_terms * self.resources.len()) as u64,
            degraded_terms: outcome.degraded_terms,
            generation: self.generation,
        })
    }

    /// Backfill pass over degraded-coverage terms: re-query exactly the
    /// important terms recorded in [`FacetSnapshot::degraded`], recompute
    /// the term rows and `df_C` contributions of the documents that use a
    /// term whose resolution changed, re-rank, and publish a new
    /// snapshot.
    ///
    /// Once the failing resources have recovered (e.g. a circuit breaker
    /// has closed), the repaired snapshot is string-identical — facet
    /// terms, frequencies, score bits, forest edges, and (empty)
    /// degradation — to a build that never saw a fault. Terms whose
    /// resources are still failing keep their provenance and stay
    /// eligible for the next pass. With no degradation outstanding this
    /// is a no-op: nothing is re-queried and no snapshot is published.
    ///
    /// # Errors
    /// Returns [`IndexError`] if the index's internal state is corrupted
    /// (document/term alignment); the published snapshot is untouched.
    pub fn repair(&mut self) -> Result<RepairStats, IndexError> {
        let _span = self.recorder.span("repair");
        let outcome = repair_degraded_recorded(
            &self.db,
            &self.important,
            &self.resources,
            &mut self.vocab,
            &self.recorder,
            &mut self.cache,
            &mut self.ctx,
        )?;
        if outcome.requeried_terms == 0 {
            return Ok(RepairStats {
                generation: self.generation,
                ..RepairStats::default()
            });
        }

        let df = self.db.df_table_resized(self.vocab.len());
        let frozen = self.vocab.freeze();
        let (candidates, forest) = rank_and_build_forest(
            &df,
            self.ctx.df_table(),
            self.db.len() as u64,
            &self.ctx.doc_terms,
            &frozen,
            self.statistic,
            &self.options,
            &self.recorder,
        );

        self.generation += 1;
        {
            let _span = self.recorder.span("swap");
            let snapshot = Arc::new(FacetSnapshot::assemble(
                self.generation,
                frozen,
                Arc::new(self.ctx.doc_terms.clone()),
                candidates,
                forest,
                Arc::new(self.ctx.degraded().clone()),
            ));
            *self.snapshot.write() = snapshot;
        }
        self.recorder.incr("repair.snapshot_swaps");

        Ok(RepairStats {
            requeried_terms: outcome.requeried_terms,
            repaired_terms: outcome.repaired_terms,
            still_degraded: outcome.still_degraded,
            changed_docs: outcome.changed_docs,
            generation: self.generation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct FixedExtractor;
    impl TermExtractor for FixedExtractor {
        fn name(&self) -> &'static str {
            "Fixed"
        }
        fn extract(&self, text: &str) -> Vec<String> {
            let mut out = Vec::new();
            if text.contains("Jacques Chirac") {
                out.push("jacques chirac".into());
            }
            if text.contains("Angela Merkel") {
                out.push("angela merkel".into());
            }
            out
        }
    }

    struct FixedResource(HashMap<&'static str, Vec<&'static str>>);
    impl ContextResource for FixedResource {
        fn name(&self) -> &'static str {
            "Fixed"
        }
        fn context_terms(&self, term: &str) -> Vec<String> {
            self.0
                .get(term)
                .map(|v| v.iter().map(|s| s.to_string()).collect())
                .unwrap_or_default()
        }
    }

    fn resource() -> FixedResource {
        let mut map = HashMap::new();
        map.insert("jacques chirac", vec!["political leaders", "france"]);
        map.insert("angela merkel", vec!["political leaders", "germany"]);
        FixedResource(map)
    }

    fn doc(id: u32, text: &str) -> Document {
        Document {
            id: DocId(id),
            source: 0,
            day: 0,
            title: "Story".into(),
            text: text.into(),
        }
    }

    fn chirac_docs(n: usize) -> Vec<Document> {
        (0..n as u32)
            .map(|i| {
                doc(
                    i,
                    "Jacques Chirac discussed matters with advisers in the capital.",
                )
            })
            .collect()
    }

    fn merkel_docs(n: usize) -> Vec<Document> {
        (0..n as u32)
            .map(|i| doc(i, "Angela Merkel spoke with ministers about the budget."))
            .collect()
    }

    fn options() -> PipelineOptions {
        PipelineOptions {
            top_k: 10,
            ..Default::default()
        }
    }

    #[test]
    fn empty_index_has_generation_zero() {
        let e = FixedExtractor;
        let r = resource();
        let index = FacetIndex::new(vec![&e], vec![&r], options());
        let snap = index.snapshot();
        assert_eq!(snap.generation(), 0);
        assert_eq!(snap.n_docs(), 0);
        assert!(snap.facet_terms().is_empty());
        assert!(index.is_empty());
    }

    #[test]
    fn build_selects_context_facets() {
        let e = FixedExtractor;
        let r = resource();
        let index = FacetIndex::build(chirac_docs(12), vec![&e], vec![&r], options()).unwrap();
        let snap = index.snapshot();
        assert_eq!(snap.generation(), 1);
        assert_eq!(snap.n_docs(), 12);
        let terms = snap.facet_terms();
        assert!(terms.contains(&"political leaders"), "{terms:?}");
        assert!(terms.contains(&"france"), "{terms:?}");
    }

    #[test]
    fn append_reuses_resolved_terms() {
        let e = FixedExtractor;
        let r = resource();
        let mut index = FacetIndex::new(vec![&e], vec![&r], options());
        let first = index.append(chirac_docs(8)).unwrap();
        assert_eq!(first.docs, 8);
        assert_eq!(first.new_distinct_terms, 1);
        assert_eq!(first.reused_terms, 0);
        assert_eq!(first.resource_queries, 1);

        // Same entity again: fully served from the cache.
        let second = index.append(chirac_docs(4)).unwrap();
        assert_eq!(second.new_distinct_terms, 0);
        assert_eq!(second.reused_terms, 1);
        assert_eq!(second.resource_queries, 0);
        assert!((second.cache_reuse_ratio() - 1.0).abs() < 1e-12);

        // A new entity costs exactly one resolution.
        let third = index.append(merkel_docs(6)).unwrap();
        assert_eq!(third.new_distinct_terms, 1);
        assert_eq!(third.generation, 3);
        assert_eq!(index.len(), 18);
        assert_eq!(index.resolved_terms(), 2);
    }

    #[test]
    fn snapshots_are_isolated_from_later_appends() {
        let e = FixedExtractor;
        let r = resource();
        let mut index = FacetIndex::build(chirac_docs(12), vec![&e], vec![&r], options()).unwrap();
        let old = index.snapshot();
        let old_terms: Vec<String> = old.facet_terms().iter().map(|s| s.to_string()).collect();
        index.append(merkel_docs(12)).unwrap();
        // The old snapshot still answers from its frozen state.
        assert_eq!(old.n_docs(), 12);
        assert_eq!(
            old.facet_terms()
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            old_terms
        );
        assert_eq!(old.vocab().get("germany"), None, "frozen before merkel");
        // The new snapshot sees the new entity.
        let new = index.snapshot();
        assert_eq!(new.n_docs(), 24);
        assert!(new.facet_terms().contains(&"germany"));
        assert!(new.generation() > old.generation());
    }

    #[test]
    fn snapshot_browse_is_read_only_and_shared() {
        let e = FixedExtractor;
        let r = resource();
        let mut index = FacetIndex::build(chirac_docs(12), vec![&e], vec![&r], options()).unwrap();
        index.append(merkel_docs(12)).unwrap();
        let snap = index.snapshot();
        let engine = snap.browse();
        assert_eq!(engine.n_docs(), 24);
        let leaders = snap.vocab().get("political leaders").unwrap();
        assert_eq!(engine.docs_with(leaders).len(), 24);
        let france = snap.vocab().get("france").unwrap();
        assert_eq!(engine.docs_with(france).len(), 12);
        // Reads work from plain `&` across threads (Arc-shared state).
        let snap2 = Arc::clone(&snap);
        std::thread::scope(|s| {
            s.spawn(move || {
                let engine = snap2.browse();
                assert_eq!(engine.select(&[france]).len(), 12);
            });
        });
    }

    /// String-level view: (term, df, df_c, score bits) rows, forest
    /// edges, and degraded provenance — comparable across build paths
    /// whose TermId assignments differ.
    #[allow(clippy::type_complexity)]
    fn view(
        snap: &FacetSnapshot,
    ) -> (
        Vec<(String, u64, u64, String)>,
        Vec<(String, String)>,
        Vec<(String, Vec<String>)>,
    ) {
        let rows = snap
            .candidates()
            .iter()
            .map(|c| {
                (
                    snap.vocab().term(c.term).to_string(),
                    c.df,
                    c.df_c,
                    format!("{:x}", c.score.to_bits()),
                )
            })
            .collect();
        let degraded = snap
            .degraded()
            .iter()
            .map(|(t, f)| (t.clone(), f.clone()))
            .collect();
        (rows, snap.forest().edges(), degraded)
    }

    #[test]
    fn degraded_append_records_provenance_in_snapshot() {
        let e = FixedExtractor;
        let faulty = facet_resources::FaultyResource::new(
            resource(),
            facet_resources::FaultPlan::seeded(2, 1000),
            facet_resources::VirtualClock::new(),
        );
        let mut index = FacetIndex::new(vec![&e], vec![&faulty], options());
        let stats = index.append(chirac_docs(8)).unwrap();
        assert_eq!(stats.degraded_terms, 1);
        let snap = index.snapshot();
        assert!(!snap.is_fully_covered());
        assert_eq!(
            snap.degraded().get("jacques chirac"),
            Some(&vec!["Fixed".to_string()]),
            "provenance names the failed resource by its real name"
        );
        // Context facets are missing while degraded.
        assert!(!snap.facet_terms().contains(&"france"));
    }

    #[test]
    fn repair_converges_to_the_fault_free_snapshot() {
        let e = FixedExtractor;
        let r = resource();
        let clean = FacetIndex::build(chirac_docs(12), vec![&e], vec![&r], options()).unwrap();

        let faulty = facet_resources::FaultyResource::new(
            resource(),
            facet_resources::FaultPlan::seeded(2, 1000),
            facet_resources::VirtualClock::new(),
        );
        let mut index = FacetIndex::new(vec![&e], vec![&faulty], options());
        index.append(chirac_docs(12)).unwrap();

        // Repair while the resource is still down: degradation persists,
        // no spurious snapshot churn beyond the re-query.
        let stats = index.repair().unwrap();
        assert_eq!(stats.repaired_terms, 0);
        assert_eq!(stats.still_degraded, 1);
        assert!(!index.snapshot().is_fully_covered());

        // The backend recovers; repair backfills and converges.
        faulty.heal();
        let stats = index.repair().unwrap();
        assert_eq!(stats.requeried_terms, 1);
        assert_eq!(stats.repaired_terms, 1);
        assert_eq!(stats.changed_docs, 12);
        let repaired = index.snapshot();
        assert!(repaired.is_fully_covered());
        assert_eq!(view(&repaired), view(&clean.snapshot()));

        // Nothing left to do: no re-query, no new generation.
        let stats = index.repair().unwrap();
        assert_eq!(stats.requeried_terms, 0);
        assert_eq!(stats.generation, repaired.generation());
        assert_eq!(index.snapshot().generation(), repaired.generation());
    }

    #[test]
    fn append_counters_recorded() {
        let e = FixedExtractor;
        let r = resource();
        let recorder = Recorder::enabled();
        let mut index =
            FacetIndex::new(vec![&e], vec![&r], options()).with_recorder(recorder.clone());
        index.append(chirac_docs(8)).unwrap();
        index.append(chirac_docs(4)).unwrap();
        let counts = recorder.snapshot_counts_only();
        assert_eq!(counts["counter.append.docs"], 12);
        assert_eq!(counts["counter.append.new_distinct_terms"], 1);
        assert_eq!(counts["counter.append.reused_terms"], 1);
        assert_eq!(counts["counter.append.snapshot_swaps"], 2);
        assert_eq!(counts["span.append.count"], 2);
        assert_eq!(counts["span.append.expand.count"], 2);
        assert_eq!(counts["span.append.select.count"], 2);
        assert_eq!(counts["span.append.subsumption.count"], 2);
        // Resource queried exactly once across both appends.
        assert_eq!(counts["counter.resource.Fixed.queries"], 1);
    }
}
