//! Crash-safe persistence for the facet indexes (DESIGN.md §18).
//!
//! This module is the bridge between the byte-level durability subsystem
//! (`facet-store`: versioned snapshots, append-ahead WAL, recovery with
//! corruption fallback) and the pipeline state the indexes actually
//! hold. It defines what the opaque snapshot *sections* and WAL *record
//! payloads* contain:
//!
//! * [`FacetIndex::persist_to`] encodes every piece of index state —
//!   interner arena, document store, df/`df_C` tables, per-document term
//!   rows, expansion cache, degradation provenance, ranked candidates,
//!   and the subsumption forest — into named, individually checksummed
//!   sections and publishes them as one snapshot generation.
//! * [`FacetIndex::append_logged`] / [`FacetIndex::repair_logged`] wrap
//!   the live update paths with WAL records: an append is logged
//!   *before* it is applied (log-ahead — once the record is durable the
//!   batch survives a crash), a repair is logged *after* it publishes
//!   (a no-op repair publishes nothing and logs nothing).
//! * [`FacetIndex::open_from`] recovers: load the newest snapshot
//!   generation that verifies, decode the sections back into pipeline
//!   state, and replay the WAL tail through the ordinary
//!   `append`/`repair` code paths. Because the pipeline is
//!   deterministic end-to-end, the replayed index converges
//!   **string-identical** ([`FacetSnapshot::digest`]) to an index that
//!   never crashed — `tests/recovery.rs` proves it under injected
//!   corruption.
//!
//! [`ShardedFacetIndex`] persists through the same store with per-shard
//! sections (`shard3.vocab`, `shard3.cache`, …) alongside the merged
//! tables, so a recovered sharded index resumes with every shard's
//! private vocabulary, cache, and id mapping intact.
//!
//! ## Replay discipline
//!
//! Every WAL record's sequence number equals the generation its
//! publication produced. Replay asserts this invariant record by record
//! ([`StoreError::ReplayFailed`] on any divergence), and the store
//! already guarantees the tail is contiguous from the snapshot's
//! generation — so recovery either reproduces the exact publication
//! history or fails loudly; it never silently skips or reorders a batch.

use crate::config::PipelineOptions;
use crate::hierarchy::{FacetForest, FacetTree, TreeNode};
use crate::index::{AppendStats, FacetIndex, FacetSnapshot, IndexError, RepairStats};
use crate::selection::{FacetCandidate, SelectionStatistic};
use crate::shard::{ShardState, ShardedAppendStats, ShardedFacetIndex};
use facet_corpus::db::TermingOptions;
use facet_corpus::{DocId, Document, TextDatabase};
use facet_resources::{
    ContextResource, ContextualizedDatabase, ExpansionCache, ExpansionOptions, ResolvedTerm,
};
use facet_store::bytes::{ByteReader, ByteWriter};
use facet_store::{FacetStore, RecoveryReport, SnapshotPayload, StoreError, WalRecord};
use facet_termx::TermExtractor;
use facet_textkit::{Interner, TermId, Vocabulary};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Version of the section *contents* (the store's `FORMAT_VERSION`
/// covers the framing). Bump when any section codec changes shape.
pub const STATE_VERSION: u32 = 1;

fn corrupt(section: &str) -> StoreError {
    StoreError::CorruptSection {
        section: section.to_string(),
    }
}

fn replay_failed(seq: u64, detail: impl Into<String>) -> StoreError {
    StoreError::ReplayFailed {
        seq,
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------
// Primitive codecs. Encoders write into a ByteWriter; decoders return
// Option so a truncated or drifted section surfaces as CorruptSection
// through one `.ok_or_else` at the section boundary (the store already
// checksums sections, so reaching a decode failure means format drift,
// not bit rot — but it must still never panic).
// ---------------------------------------------------------------------

fn enc_u64s(w: &mut ByteWriter, values: &[u64]) {
    w.u64(values.len() as u64);
    for v in values {
        w.u64(*v);
    }
}

fn dec_u64s(r: &mut ByteReader<'_>) -> Option<Vec<u64>> {
    let n = r.u64()? as usize;
    let mut out = Vec::with_capacity(n.min(r.remaining() / 8 + 1));
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Some(out)
}

fn enc_terms(w: &mut ByteWriter, terms: &[TermId]) {
    w.u64(terms.len() as u64);
    for t in terms {
        w.u32(t.0);
    }
}

fn dec_terms(r: &mut ByteReader<'_>) -> Option<Vec<TermId>> {
    let n = r.u64()? as usize;
    let mut out = Vec::with_capacity(n.min(r.remaining() / 4 + 1));
    for _ in 0..n {
        out.push(TermId(r.u32()?));
    }
    Some(out)
}

fn enc_rows(w: &mut ByteWriter, rows: &[Vec<TermId>]) {
    w.u64(rows.len() as u64);
    for row in rows {
        enc_terms(w, row);
    }
}

fn dec_rows(r: &mut ByteReader<'_>) -> Option<Vec<Vec<TermId>>> {
    let n = r.u64()? as usize;
    let mut out = Vec::with_capacity(n.min(r.remaining() / 8 + 1));
    for _ in 0..n {
        out.push(dec_terms(r)?);
    }
    Some(out)
}

fn enc_docs(w: &mut ByteWriter, docs: &[Document]) {
    w.u64(docs.len() as u64);
    for d in docs {
        w.u32(d.id.0);
        w.u32(u32::from(d.source));
        w.u32(u32::from(d.day));
        w.str(&d.title);
        w.str(&d.text);
    }
}

fn dec_docs(r: &mut ByteReader<'_>) -> Option<Vec<Document>> {
    let n = r.u64()? as usize;
    let mut out = Vec::with_capacity(n.min(r.remaining() / 16 + 1));
    for _ in 0..n {
        let id = DocId(r.u32()?);
        let source = u16::try_from(r.u32()?).ok()?;
        let day = u16::try_from(r.u32()?).ok()?;
        let title = r.str()?.to_string();
        let text = r.str()?.to_string();
        out.push(Document {
            id,
            source,
            day,
            title,
            text,
        });
    }
    Some(out)
}

/// The interner round-trips through its raw parts; `Interner::from_parts`
/// replays the exact progressive table growth, so a restored vocabulary
/// interns future terms byte-identically to the live one it mirrors.
fn enc_vocab(vocab: &Vocabulary) -> Vec<u8> {
    let interner = vocab.as_interner();
    let stats = vocab.stats();
    let mut w = ByteWriter::new();
    w.str(interner.arena());
    w.u64(interner.spans().len() as u64);
    for (s, e) in interner.spans() {
        w.u32(*s);
        w.u32(*e);
    }
    w.u64(stats.hits);
    w.u64(stats.misses);
    w.finish()
}

fn dec_vocab(bytes: &[u8]) -> Option<Vocabulary> {
    let mut r = ByteReader::new(bytes);
    let arena = r.str()?.to_string();
    let n = r.u64()? as usize;
    let mut spans = Vec::with_capacity(n.min(arena.len() + 1));
    for _ in 0..n {
        let s = r.u32()?;
        let e = r.u32()?;
        spans.push((s, e));
    }
    let hits = r.u64()?;
    let misses = r.u64()?;
    if !r.is_empty() {
        return None;
    }
    let interner = Interner::from_parts(arena, spans, hits, misses)?;
    Some(Vocabulary::from_interner(interner))
}

/// Cache entries are encoded in term-id order — the backing map does not
/// guarantee an iteration order, and a canonical byte stream keeps
/// snapshots of equal state byte-identical.
fn enc_cache(cache: &ExpansionCache) -> Vec<u8> {
    let mut entries: Vec<(TermId, &ResolvedTerm)> = cache.entries().collect();
    entries.sort_unstable_by_key(|(t, _)| t.0);
    let mut w = ByteWriter::new();
    w.u64(entries.len() as u64);
    for (term, resolution) in entries {
        w.u32(term.0);
        enc_terms(&mut w, &resolution.terms);
        w.u64(resolution.failed.len() as u64);
        for f in &resolution.failed {
            w.str(f);
        }
    }
    w.finish()
}

fn dec_cache(bytes: &[u8]) -> Option<ExpansionCache> {
    let mut r = ByteReader::new(bytes);
    let n = r.u64()? as usize;
    let mut cache = ExpansionCache::new();
    for _ in 0..n {
        let term = TermId(r.u32()?);
        let terms = dec_terms(&mut r)?;
        let n_failed = r.u64()? as usize;
        let mut failed = Vec::with_capacity(n_failed.min(r.remaining() / 8 + 1));
        for _ in 0..n_failed {
            failed.push(r.str()?.to_string());
        }
        cache.restore(term, ResolvedTerm { terms, failed });
    }
    if r.is_empty() {
        Some(cache)
    } else {
        None
    }
}

// lint:allow(string-keyed-map, reason="serving-edge degraded report; strings materialize here by design")
fn enc_degraded(w: &mut ByteWriter, degraded: &BTreeMap<String, Vec<String>>) {
    w.u64(degraded.len() as u64);
    for (term, failed) in degraded {
        w.str(term);
        w.u64(failed.len() as u64);
        for f in failed {
            w.str(f);
        }
    }
}

// lint:allow(string-keyed-map, reason="serving-edge degraded report; strings materialize here by design")
fn dec_degraded(r: &mut ByteReader<'_>) -> Option<BTreeMap<String, Vec<String>>> {
    let n = r.u64()? as usize;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let term = r.str()?.to_string();
        let n_failed = r.u64()? as usize;
        let mut failed = Vec::with_capacity(n_failed.min(r.remaining() / 8 + 1));
        for _ in 0..n_failed {
            failed.push(r.str()?.to_string());
        }
        out.insert(term, failed);
    }
    Some(out)
}

fn enc_candidates(candidates: &[FacetCandidate]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(candidates.len() as u64);
    for c in candidates {
        w.u32(c.term.0);
        w.u64(c.df);
        w.u64(c.df_c);
        w.u64(c.shift_f as u64);
        w.u64(c.shift_r as u64);
        w.f64(c.score);
    }
    w.finish()
}

fn dec_candidates(bytes: &[u8]) -> Option<Vec<FacetCandidate>> {
    let mut r = ByteReader::new(bytes);
    let n = r.u64()? as usize;
    let mut out = Vec::with_capacity(n.min(r.remaining() / 44 + 1));
    for _ in 0..n {
        out.push(FacetCandidate {
            term: TermId(r.u32()?),
            df: r.u64()?,
            df_c: r.u64()?,
            shift_f: r.u64()? as i64,
            shift_r: r.u64()? as i64,
            score: r.f64()?,
        });
    }
    if r.is_empty() {
        Some(out)
    } else {
        None
    }
}

/// Trees encode preorder — `(term, doc_count, n_children)` per node —
/// and decode with an explicit stack, so arbitrarily deep hierarchies
/// round-trip without recursion.
fn enc_forest(forest: &FacetForest) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(forest.trees.len() as u64);
    for tree in &forest.trees {
        let mut stack = vec![&tree.root];
        while let Some(node) = stack.pop() {
            w.u32(node.term.0);
            w.u64(node.doc_count);
            w.u32(node.children.len() as u32);
            for child in node.children.iter().rev() {
                stack.push(child);
            }
        }
    }
    w.finish()
}

fn dec_tree(r: &mut ByteReader<'_>) -> Option<TreeNode> {
    struct Pending {
        node: TreeNode,
        remaining: u32,
    }
    let read_one = |r: &mut ByteReader<'_>| -> Option<(TreeNode, u32)> {
        let term = TermId(r.u32()?);
        let doc_count = r.u64()?;
        let n_children = r.u32()?;
        Some((
            TreeNode {
                term,
                doc_count,
                children: Vec::new(),
            },
            n_children,
        ))
    };
    let (node, remaining) = read_one(r)?;
    let mut stack = vec![Pending { node, remaining }];
    loop {
        let top_done = stack.last().map(|p| p.remaining == 0)?;
        if top_done {
            let done = stack.pop()?;
            match stack.last_mut() {
                Some(parent) => {
                    parent.node.children.push(done.node);
                    parent.remaining -= 1;
                }
                None => return Some(done.node),
            }
        } else {
            let (node, remaining) = read_one(r)?;
            stack.push(Pending { node, remaining });
        }
    }
}

fn dec_forest(bytes: &[u8], vocab: facet_textkit::FrozenVocabulary) -> Option<FacetForest> {
    let mut r = ByteReader::new(bytes);
    let n = r.u64()? as usize;
    let mut trees = Vec::with_capacity(n.min(r.remaining() / 16 + 1));
    for _ in 0..n {
        trees.push(FacetTree {
            root: dec_tree(&mut r)?,
        });
    }
    if r.is_empty() {
        Some(FacetForest::new(trees, vocab))
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// Meta section: the one section every snapshot must carry.
// ---------------------------------------------------------------------

const KIND_INDEX: u8 = 0;
const KIND_SHARDED: u8 = 1;

struct Meta {
    kind: u8,
    generation: u64,
    statistic: SelectionStatistic,
    options: PipelineOptions,
    terming: TermingOptions,
    n_shards: u32,
    n_docs: u64,
}

fn enc_meta(meta: &Meta) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(STATE_VERSION);
    w.u8(meta.kind);
    w.u64(meta.generation);
    w.u8(match meta.statistic {
        SelectionStatistic::LogLikelihood => 0,
        SelectionStatistic::ChiSquare => 1,
    });
    w.u64(meta.options.top_k as u64);
    w.u64(meta.options.expansion.threads as u64);
    w.f64(meta.options.subsumption_threshold);
    w.u64(meta.options.min_df_c);
    w.u8(u8::from(meta.terming.bigrams));
    w.u64(meta.terming.min_len as u64);
    w.u32(meta.n_shards);
    w.u64(meta.n_docs);
    w.finish()
}

fn dec_meta(bytes: &[u8], expected_kind: u8) -> Option<Meta> {
    let mut r = ByteReader::new(bytes);
    if r.u32()? != STATE_VERSION {
        return None;
    }
    let kind = r.u8()?;
    if kind != expected_kind {
        return None;
    }
    let generation = r.u64()?;
    let statistic = match r.u8()? {
        0 => SelectionStatistic::LogLikelihood,
        1 => SelectionStatistic::ChiSquare,
        _ => return None,
    };
    let options = PipelineOptions {
        top_k: r.u64()? as usize,
        expansion: ExpansionOptions {
            threads: (r.u64()? as usize).max(1),
        },
        subsumption_threshold: r.f64()?,
        min_df_c: r.u64()?,
    };
    let terming = TermingOptions {
        bigrams: r.u8()? != 0,
        min_len: r.u64()? as usize,
    };
    let n_shards = r.u32()?;
    let n_docs = r.u64()?;
    if r.is_empty() {
        Some(Meta {
            kind,
            generation,
            statistic,
            options,
            terming,
            n_shards,
            n_docs,
        })
    } else {
        None
    }
}

fn section<'p>(payload: &'p SnapshotPayload, name: &str) -> Result<&'p [u8], StoreError> {
    payload.section(name).ok_or_else(|| corrupt(name))
}

// ---------------------------------------------------------------------
// WAL record payloads, shared by both index flavors.
// ---------------------------------------------------------------------

const RECORD_APPEND: u8 = 0;
const RECORD_REPAIR: u8 = 1;

fn enc_append_payload(batch: &[Document]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(RECORD_APPEND);
    enc_docs(&mut w, batch);
    w.finish()
}

fn enc_repair_payload() -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(RECORD_REPAIR);
    w.finish()
}

/// What one WAL record asks a replaying index to do.
enum ReplayOp {
    Append(Vec<Document>),
    Repair,
}

fn dec_record(record: &WalRecord) -> Result<ReplayOp, StoreError> {
    let mut r = ByteReader::new(&record.payload);
    match r.u8() {
        Some(RECORD_APPEND) => {
            let docs = dec_docs(&mut r)
                .filter(|_| r.is_empty())
                .ok_or_else(|| replay_failed(record.seq, "append record payload is malformed"))?;
            Ok(ReplayOp::Append(docs))
        }
        Some(RECORD_REPAIR) if r.is_empty() => Ok(ReplayOp::Repair),
        _ => Err(replay_failed(record.seq, "unknown record kind")),
    }
}

fn check_replayed_generation(seq: u64, landed: u64) -> Result<(), StoreError> {
    if landed == seq {
        Ok(())
    } else {
        Err(replay_failed(
            seq,
            format!("replayed publication landed on generation {landed}, record says {seq}"),
        ))
    }
}

// ---------------------------------------------------------------------
// FacetIndex sections.
// ---------------------------------------------------------------------

fn encode_index(index: &FacetIndex<'_>) -> SnapshotPayload {
    let ctx = index.contextualized();
    let db = index.database();
    let snapshot = index.snapshot();
    let sections = vec![
        (
            "meta".to_string(),
            enc_meta(&Meta {
                kind: KIND_INDEX,
                generation: index.generation(),
                statistic: index.statistic(),
                options: index.options().clone(),
                terming: db.options().clone(),
                n_shards: 0,
                n_docs: db.len() as u64,
            }),
        ),
        ("vocab".to_string(), enc_vocab(index.vocabulary())),
        ("docs".to_string(), {
            let mut w = ByteWriter::new();
            enc_docs(&mut w, db.docs());
            w.finish()
        }),
        ("doc_terms".to_string(), {
            let mut w = ByteWriter::new();
            enc_rows(&mut w, db.doc_terms_rows());
            w.finish()
        }),
        ("df".to_string(), {
            let mut w = ByteWriter::new();
            enc_u64s(&mut w, db.df_table());
            w.finish()
        }),
        ("important".to_string(), {
            let mut w = ByteWriter::new();
            enc_rows(&mut w, index.important_rows());
            w.finish()
        }),
        ("cache".to_string(), enc_cache(index.expansion_cache())),
        ("ctx_rows".to_string(), {
            let mut w = ByteWriter::new();
            enc_rows(&mut w, &ctx.doc_terms);
            w.finish()
        }),
        ("ctx_df".to_string(), {
            let mut w = ByteWriter::new();
            enc_u64s(&mut w, ctx.df_table());
            w.finish()
        }),
        ("ctx_context".to_string(), {
            let mut w = ByteWriter::new();
            enc_rows(&mut w, &ctx.doc_context_terms);
            w.finish()
        }),
        ("degraded".to_string(), {
            let mut w = ByteWriter::new();
            enc_degraded(&mut w, ctx.degraded());
            w.finish()
        }),
        (
            "candidates".to_string(),
            enc_candidates(snapshot.candidates()),
        ),
        ("forest".to_string(), enc_forest(snapshot.forest())),
    ];
    SnapshotPayload {
        generation: index.generation(),
        sections,
    }
}

fn restore_index(index: &mut FacetIndex<'_>, payload: &SnapshotPayload) -> Result<(), StoreError> {
    let meta = dec_meta(section(payload, "meta")?, KIND_INDEX).ok_or_else(|| corrupt("meta"))?;
    let vocab = dec_vocab(section(payload, "vocab")?).ok_or_else(|| corrupt("vocab"))?;

    let mut r = ByteReader::new(section(payload, "docs")?);
    let docs = dec_docs(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt("docs"))?;
    let mut r = ByteReader::new(section(payload, "doc_terms")?);
    let doc_terms = dec_rows(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt("doc_terms"))?;
    let mut r = ByteReader::new(section(payload, "df")?);
    let df = dec_u64s(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt("df"))?;
    let db = TextDatabase::from_parts(docs, doc_terms, df, meta.terming)
        .ok_or_else(|| corrupt("docs"))?;

    let mut r = ByteReader::new(section(payload, "important")?);
    let important = dec_rows(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt("important"))?;
    let cache = dec_cache(section(payload, "cache")?).ok_or_else(|| corrupt("cache"))?;

    let mut r = ByteReader::new(section(payload, "ctx_rows")?);
    let ctx_rows = dec_rows(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt("ctx_rows"))?;
    let mut r = ByteReader::new(section(payload, "ctx_df")?);
    let ctx_df = dec_u64s(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt("ctx_df"))?;
    let mut r = ByteReader::new(section(payload, "ctx_context")?);
    let ctx_context = dec_rows(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt("ctx_context"))?;
    let mut r = ByteReader::new(section(payload, "degraded")?);
    let degraded = dec_degraded(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt("degraded"))?;
    let ctx = ContextualizedDatabase::from_parts(ctx_rows, ctx_df, ctx_context, degraded)
        .ok_or_else(|| corrupt("ctx_rows"))?;

    let candidates =
        dec_candidates(section(payload, "candidates")?).ok_or_else(|| corrupt("candidates"))?;
    let frozen = vocab.freeze();
    let forest =
        dec_forest(section(payload, "forest")?, frozen.clone()).ok_or_else(|| corrupt("forest"))?;

    if payload.generation != meta.generation || db.len() as u64 != meta.n_docs {
        return Err(corrupt("meta"));
    }

    let snapshot = FacetSnapshot::assemble(
        meta.generation,
        frozen,
        Arc::new(ctx.doc_terms.clone()),
        candidates,
        forest,
        Arc::new(ctx.degraded().clone()),
    );
    index.install_state(
        meta.options,
        meta.statistic,
        vocab,
        db,
        important,
        cache,
        ctx,
        meta.generation,
        snapshot,
    );
    Ok(())
}

impl<'a> FacetIndex<'a> {
    /// Publish the index's entire state as one snapshot generation
    /// (atomic write, retention, WAL pruning). Returns the generation
    /// written.
    ///
    /// # Errors
    /// Any [`StoreError`] from the store; the index itself is untouched.
    pub fn persist_to(&self, store: &FacetStore) -> Result<u64, StoreError> {
        let payload = encode_index(self);
        store.publish_snapshot(&payload)?;
        Ok(payload.generation)
    }

    /// Recover an index from a store: newest verified snapshot, then
    /// replay of the WAL tail through the live [`FacetIndex::append`] /
    /// [`FacetIndex::repair`] paths. `options` applies only when the
    /// store is empty (a fresh directory); a persisted snapshot restores
    /// the options it was built with.
    ///
    /// # Errors
    /// [`StoreError`] from recovery, decoding, or a replayed publication
    /// that diverges from its record ([`StoreError::ReplayFailed`]).
    pub fn open_from(
        store: &FacetStore,
        extractors: Vec<&'a dyn TermExtractor>,
        resources: Vec<&'a dyn ContextResource>,
        options: PipelineOptions,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let recovery = store.recover()?;
        let mut index = FacetIndex::new(extractors, resources, options);
        if recovery.snapshot.generation > 0 || !recovery.snapshot.sections.is_empty() {
            restore_index(&mut index, &recovery.snapshot)?;
        }
        for record in &recovery.tail {
            match dec_record(record)? {
                ReplayOp::Append(docs) => {
                    let stats = index
                        .append(docs)
                        .map_err(|e| replay_failed(record.seq, e.to_string()))?;
                    check_replayed_generation(record.seq, stats.generation)?;
                }
                ReplayOp::Repair => {
                    let stats = index
                        .repair()
                        .map_err(|e| replay_failed(record.seq, e.to_string()))?;
                    check_replayed_generation(record.seq, stats.generation)?;
                }
            }
        }
        Ok((index, recovery.report))
    }

    /// [`FacetIndex::append`] with log-ahead durability: the batch is
    /// written to the WAL (sequence = the generation the append will
    /// publish) *before* it is applied, so a crash at any point replays
    /// to a state that includes every acknowledged batch.
    ///
    /// # Errors
    /// [`IndexError::Store`] if the WAL write fails (the batch was not
    /// applied), or any [`IndexError`] from the append itself (the
    /// record is durable; recovery replays it from the last snapshot).
    pub fn append_logged(
        &mut self,
        batch: Vec<Document>,
        store: &FacetStore,
    ) -> Result<AppendStats, IndexError> {
        store.log_record(self.generation() + 1, &enc_append_payload(&batch))?;
        self.append(batch)
    }

    /// [`FacetIndex::repair`] with durability: a pass that published a
    /// new generation appends a repair record *after* applying (a no-op
    /// pass logs nothing — it published nothing to recover).
    ///
    /// # Errors
    /// Any [`IndexError`] from the repair; [`IndexError::Store`] if the
    /// repair published but its record could not be logged (the caller
    /// should [`FacetIndex::persist_to`] promptly — until then the
    /// on-disk history ends one generation early).
    pub fn repair_logged(&mut self, store: &FacetStore) -> Result<RepairStats, IndexError> {
        let before = self.generation();
        let stats = self.repair()?;
        if stats.generation > before {
            store.log_record(stats.generation, &enc_repair_payload())?;
        }
        Ok(stats)
    }
}

// ---------------------------------------------------------------------
// ShardedFacetIndex sections: merged tables + per-shard state.
// ---------------------------------------------------------------------

fn encode_sharded(index: &ShardedFacetIndex<'_>) -> SnapshotPayload {
    let (merged_vocab, merged_df, merged_df_c, merged_doc_terms) = index.merged_state();
    let snapshot = index.snapshot();
    let mut sections = vec![
        (
            "meta".to_string(),
            enc_meta(&Meta {
                kind: KIND_SHARDED,
                generation: index.generation(),
                statistic: index.statistic(),
                options: index.options().clone(),
                terming: TermingOptions::default(),
                n_shards: index.n_shards() as u32,
                n_docs: index.len() as u64,
            }),
        ),
        ("merged.vocab".to_string(), enc_vocab(merged_vocab)),
        ("merged.df".to_string(), {
            let mut w = ByteWriter::new();
            enc_u64s(&mut w, merged_df);
            w.finish()
        }),
        ("merged.df_c".to_string(), {
            let mut w = ByteWriter::new();
            enc_u64s(&mut w, merged_df_c);
            w.finish()
        }),
        ("merged.doc_terms".to_string(), {
            let mut w = ByteWriter::new();
            enc_rows(&mut w, merged_doc_terms);
            w.finish()
        }),
        (
            "candidates".to_string(),
            enc_candidates(snapshot.candidates()),
        ),
        ("forest".to_string(), enc_forest(snapshot.forest())),
    ];
    for i in 0..index.n_shards() {
        let s = index.shard_state(i);
        sections.push((format!("shard{i}.vocab"), enc_vocab(s.vocab)));
        sections.push((format!("shard{i}.docs"), {
            let mut w = ByteWriter::new();
            enc_docs(&mut w, s.db.docs());
            w.finish()
        }));
        sections.push((format!("shard{i}.doc_terms"), {
            let mut w = ByteWriter::new();
            enc_rows(&mut w, s.db.doc_terms_rows());
            w.finish()
        }));
        sections.push((format!("shard{i}.df"), {
            let mut w = ByteWriter::new();
            enc_u64s(&mut w, s.db.df_table());
            w.finish()
        }));
        sections.push((format!("shard{i}.cache"), enc_cache(s.cache)));
        sections.push((format!("shard{i}.ctx_rows"), {
            let mut w = ByteWriter::new();
            enc_rows(&mut w, &s.ctx.doc_terms);
            w.finish()
        }));
        sections.push((format!("shard{i}.ctx_df"), {
            let mut w = ByteWriter::new();
            enc_u64s(&mut w, s.ctx.df_table());
            w.finish()
        }));
        sections.push((format!("shard{i}.ctx_context"), {
            let mut w = ByteWriter::new();
            enc_rows(&mut w, &s.ctx.doc_context_terms);
            w.finish()
        }));
        sections.push((format!("shard{i}.degraded"), {
            let mut w = ByteWriter::new();
            enc_degraded(&mut w, s.ctx.degraded());
            w.finish()
        }));
        sections.push((format!("shard{i}.important"), {
            let mut w = ByteWriter::new();
            enc_rows(&mut w, s.important);
            w.finish()
        }));
        sections.push((format!("shard{i}.to_merged"), {
            let mut w = ByteWriter::new();
            enc_terms(&mut w, s.to_merged);
            w.finish()
        }));
    }
    SnapshotPayload {
        generation: index.generation(),
        sections,
    }
}

fn restore_shard(
    payload: &SnapshotPayload,
    i: usize,
    terming: TermingOptions,
) -> Result<ShardState, StoreError> {
    let name = |suffix: &str| format!("shard{i}.{suffix}");
    let vocab =
        dec_vocab(section(payload, &name("vocab"))?).ok_or_else(|| corrupt(&name("vocab")))?;
    let mut r = ByteReader::new(section(payload, &name("docs"))?);
    let docs = dec_docs(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt(&name("docs")))?;
    let mut r = ByteReader::new(section(payload, &name("doc_terms"))?);
    let doc_terms = dec_rows(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt(&name("doc_terms")))?;
    let mut r = ByteReader::new(section(payload, &name("df"))?);
    let df = dec_u64s(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt(&name("df")))?;
    // Shard databases grow via `append_detached`: documents keep their
    // global archive ids, so the detached (strictly-increasing-id)
    // validation applies rather than the positional one.
    let db = TextDatabase::from_parts_detached(docs, doc_terms, df, terming)
        .ok_or_else(|| corrupt(&name("docs")))?;
    let cache =
        dec_cache(section(payload, &name("cache"))?).ok_or_else(|| corrupt(&name("cache")))?;
    let mut r = ByteReader::new(section(payload, &name("ctx_rows"))?);
    let ctx_rows = dec_rows(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt(&name("ctx_rows")))?;
    let mut r = ByteReader::new(section(payload, &name("ctx_df"))?);
    let ctx_df = dec_u64s(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt(&name("ctx_df")))?;
    let mut r = ByteReader::new(section(payload, &name("ctx_context"))?);
    let ctx_context = dec_rows(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt(&name("ctx_context")))?;
    let mut r = ByteReader::new(section(payload, &name("degraded"))?);
    let degraded = dec_degraded(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt(&name("degraded")))?;
    let ctx = ContextualizedDatabase::from_parts(ctx_rows, ctx_df, ctx_context, degraded)
        .ok_or_else(|| corrupt(&name("ctx_rows")))?;
    let mut r = ByteReader::new(section(payload, &name("important"))?);
    let important = dec_rows(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt(&name("important")))?;
    let mut r = ByteReader::new(section(payload, &name("to_merged"))?);
    let to_merged = dec_terms(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt(&name("to_merged")))?;
    Ok(ShardState {
        vocab,
        db,
        cache,
        ctx,
        important,
        to_merged,
    })
}

fn restore_sharded(
    index: &mut ShardedFacetIndex<'_>,
    payload: &SnapshotPayload,
) -> Result<(), StoreError> {
    let meta = dec_meta(section(payload, "meta")?, KIND_SHARDED).ok_or_else(|| corrupt("meta"))?;
    if meta.n_shards as usize != index.n_shards() || payload.generation != meta.generation {
        return Err(corrupt("meta"));
    }
    let merged_vocab =
        dec_vocab(section(payload, "merged.vocab")?).ok_or_else(|| corrupt("merged.vocab"))?;
    let mut r = ByteReader::new(section(payload, "merged.df")?);
    let merged_df = dec_u64s(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt("merged.df"))?;
    let mut r = ByteReader::new(section(payload, "merged.df_c")?);
    let merged_df_c = dec_u64s(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt("merged.df_c"))?;
    let mut r = ByteReader::new(section(payload, "merged.doc_terms")?);
    let merged_doc_terms = dec_rows(&mut r)
        .filter(|_| r.is_empty())
        .ok_or_else(|| corrupt("merged.doc_terms"))?;
    if merged_doc_terms.len() as u64 != meta.n_docs {
        return Err(corrupt("merged.doc_terms"));
    }
    let candidates =
        dec_candidates(section(payload, "candidates")?).ok_or_else(|| corrupt("candidates"))?;
    let frozen = merged_vocab.freeze();
    let forest =
        dec_forest(section(payload, "forest")?, frozen.clone()).ok_or_else(|| corrupt("forest"))?;

    for i in 0..index.n_shards() {
        let state = restore_shard(payload, i, meta.terming.clone())?;
        index.install_shard_state(i, state);
    }
    let snapshot = FacetSnapshot::assemble(
        meta.generation,
        frozen,
        Arc::new(merged_doc_terms.clone()),
        candidates,
        forest,
        Arc::new(index.merged_degraded_map()),
    );
    index.install_merged_state(
        meta.options,
        meta.statistic,
        merged_vocab,
        merged_df,
        merged_df_c,
        merged_doc_terms,
        meta.n_docs as usize,
        meta.generation,
        snapshot,
    );
    Ok(())
}

impl<'a> ShardedFacetIndex<'a> {
    /// Publish the sharded index's entire state — merged tables plus
    /// every shard's private vocabulary, cache, contextualized rows, and
    /// id mapping — as one snapshot generation. Returns the generation
    /// written.
    ///
    /// # Errors
    /// Any [`StoreError`] from the store; the index itself is untouched.
    pub fn persist_to(&self, store: &FacetStore) -> Result<u64, StoreError> {
        let payload = encode_sharded(self);
        store.publish_snapshot(&payload)?;
        Ok(payload.generation)
    }

    /// Recover a sharded index from a store; the sharded counterpart of
    /// [`FacetIndex::open_from`]. `n_shards` must match the persisted
    /// shard count (the partition function is part of document
    /// identity); `options` applies only when the store is empty.
    ///
    /// # Errors
    /// [`StoreError`] from recovery, decoding (including a shard-count
    /// mismatch), or a diverging replay.
    pub fn open_from(
        store: &FacetStore,
        n_shards: usize,
        extractors: Vec<&'a dyn TermExtractor>,
        resources: Vec<&'a dyn ContextResource>,
        options: PipelineOptions,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let recovery = store.recover()?;
        let mut index = ShardedFacetIndex::new(n_shards, extractors, resources, options);
        if recovery.snapshot.generation > 0 || !recovery.snapshot.sections.is_empty() {
            restore_sharded(&mut index, &recovery.snapshot)?;
        }
        for record in &recovery.tail {
            match dec_record(record)? {
                ReplayOp::Append(docs) => {
                    let stats = index
                        .append(docs)
                        .map_err(|e| replay_failed(record.seq, e.to_string()))?;
                    check_replayed_generation(record.seq, stats.generation)?;
                }
                ReplayOp::Repair => {
                    let stats = index
                        .repair()
                        .map_err(|e| replay_failed(record.seq, e.to_string()))?;
                    check_replayed_generation(record.seq, stats.generation)?;
                }
            }
        }
        Ok((index, recovery.report))
    }

    /// [`ShardedFacetIndex::append`] with log-ahead durability; see
    /// [`FacetIndex::append_logged`].
    ///
    /// # Errors
    /// [`IndexError::Store`] if the WAL write fails (nothing applied),
    /// or any [`IndexError`] from the append.
    pub fn append_logged(
        &mut self,
        batch: Vec<Document>,
        store: &FacetStore,
    ) -> Result<ShardedAppendStats, IndexError> {
        store.log_record(self.generation() + 1, &enc_append_payload(&batch))?;
        self.append(batch)
    }

    /// [`ShardedFacetIndex::repair`] with durability; see
    /// [`FacetIndex::repair_logged`].
    ///
    /// # Errors
    /// Any [`IndexError`] from the repair; [`IndexError::Store`] if the
    /// published pass could not be logged.
    pub fn repair_logged(&mut self, store: &FacetStore) -> Result<RepairStats, IndexError> {
        let before = self.generation();
        let stats = self.repair()?;
        if stats.generation > before {
            store.log_record(stats.generation, &enc_repair_payload())?;
        }
        Ok(stats)
    }
}
