//! The facet hierarchy model: trees over the selected facet terms,
//! materialized from a subsumption forest.
//!
//! Nodes carry only the [`TermId`] symbol; the forest holds one
//! [`FrozenVocabulary`] and resolves display labels through it at the
//! serving edge ([`FacetForest::label`], [`FacetForest::edges`],
//! [`FacetForest::render`]). One shared arena replaces the old
//! per-node `label: String` clone — a forest of N nodes used to carry N
//! heap strings duplicating the vocabulary.

use crate::subsumption::SubsumptionForest;
use facet_textkit::{FrozenVocabulary, TermId};

/// One node in a facet tree.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// The facet term.
    pub term: TermId,
    /// Documents carrying the term (in the contextualized database).
    pub doc_count: u64,
    /// Child nodes, sorted by descending document count (label
    /// tie-break).
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    /// Number of nodes in this subtree (including self).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(TreeNode::size).sum::<usize>()
    }

    /// Depth of the deepest leaf below this node (0 for a leaf).
    pub fn height(&self) -> usize {
        self.children
            .iter()
            .map(|c| c.height() + 1)
            .max()
            .unwrap_or(0)
    }
}

/// One facet: a tree rooted at a top-level facet term.
#[derive(Debug, Clone)]
pub struct FacetTree {
    /// The root node.
    pub root: TreeNode,
}

/// The full faceted structure: one tree per facet, ordered by descending
/// root document count (most prominent facet first), plus the frozen
/// vocabulary that resolves every node's display label.
#[derive(Debug, Clone, Default)]
pub struct FacetForest {
    /// The facet trees.
    pub trees: Vec<FacetTree>,
    vocab: FrozenVocabulary,
}

impl FacetForest {
    /// Assemble a forest from trees and the frozen vocabulary resolving
    /// their terms.
    pub fn new(trees: Vec<FacetTree>, vocab: FrozenVocabulary) -> Self {
        Self { trees, vocab }
    }

    /// The frozen vocabulary resolving this forest's terms.
    pub fn vocab(&self) -> &FrozenVocabulary {
        &self.vocab
    }

    /// The display label of a node of this forest (empty for a foreign
    /// node whose term the forest's vocabulary never saw).
    pub fn label(&self, node: &TreeNode) -> &str {
        self.vocab.try_term(node.term).unwrap_or("")
    }

    /// Materialize a forest from a subsumption structure.
    ///
    /// `doc_count(t)` supplies each term's document count (typically
    /// `df_C`); `vocab` supplies labels for the sort tie-breaks and is
    /// retained by the forest for display-time resolution.
    pub fn from_subsumption(
        forest: &SubsumptionForest,
        vocab: &FrozenVocabulary,
        doc_count: impl Fn(TermId) -> u64,
    ) -> Self {
        fn build(
            i: usize,
            forest: &SubsumptionForest,
            vocab: &FrozenVocabulary,
            doc_count: &impl Fn(TermId) -> u64,
        ) -> TreeNode {
            let term = forest.terms[i];
            let mut children: Vec<TreeNode> = forest
                .children(i)
                .into_iter()
                .map(|c| build(c, forest, vocab, doc_count))
                .collect();
            children.sort_by(|a, b| {
                b.doc_count
                    .cmp(&a.doc_count)
                    .then_with(|| vocab.term(a.term).cmp(vocab.term(b.term)))
            });
            TreeNode {
                term,
                doc_count: doc_count(term),
                children,
            }
        }
        let mut trees: Vec<FacetTree> = forest
            .roots()
            .into_iter()
            .map(|r| FacetTree {
                root: build(r, forest, vocab, &doc_count),
            })
            .collect();
        trees.sort_by(|a, b| {
            b.root
                .doc_count
                .cmp(&a.root.doc_count)
                .then_with(|| vocab.term(a.root.term).cmp(vocab.term(b.root.term)))
        });
        Self {
            trees,
            vocab: vocab.clone(),
        }
    }

    /// Total number of terms across all trees.
    pub fn total_terms(&self) -> usize {
        self.trees.iter().map(|t| t.root.size()).sum()
    }

    /// Find a node anywhere in the forest by label.
    pub fn find(&self, label: &str) -> Option<&TreeNode> {
        fn walk<'a>(
            node: &'a TreeNode,
            label: &str,
            vocab: &FrozenVocabulary,
        ) -> Option<&'a TreeNode> {
            if vocab.try_term(node.term) == Some(label) {
                return Some(node);
            }
            node.children.iter().find_map(|c| walk(c, label, vocab))
        }
        self.trees
            .iter()
            .find_map(|t| walk(&t.root, label, &self.vocab))
    }

    /// All `(parent label, child label)` edges in the forest.
    pub fn edges(&self) -> Vec<(String, String)> {
        fn walk(node: &TreeNode, forest: &FacetForest, out: &mut Vec<(String, String)>) {
            for c in &node.children {
                out.push((forest.label(node).to_string(), forest.label(c).to_string()));
                walk(c, forest, out);
            }
        }
        let mut out = Vec::new();
        for t in &self.trees {
            walk(&t.root, self, &mut out);
        }
        out
    }

    /// Render the forest as an indented text outline (for reports and the
    /// examples).
    pub fn render(&self, max_children: usize) -> String {
        fn walk(
            node: &TreeNode,
            forest: &FacetForest,
            depth: usize,
            max_children: usize,
            out: &mut String,
        ) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("{} ({})\n", forest.label(node), node.doc_count));
            for c in node.children.iter().take(max_children) {
                walk(c, forest, depth + 1, max_children, out);
            }
            if node.children.len() > max_children {
                out.push_str(&"  ".repeat(depth + 1));
                out.push_str(&format!("… {} more\n", node.children.len() - max_children));
            }
        }
        let mut out = String::new();
        for t in &self.trees {
            walk(&t.root, self, 0, max_children, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsumption::{build_subsumption_forest, SubsumptionParams};
    use facet_textkit::Vocabulary;

    fn forest() -> (FacetForest, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let politics = vocab.intern("politics");
        let election = vocab.intern("election");
        let ballot = vocab.intern("ballot");
        let docs = vec![
            vec![politics],
            vec![politics, election],
            vec![politics, election, ballot],
            vec![politics, election, ballot],
        ];
        let sub = build_subsumption_forest(
            &[politics, election, ballot],
            &docs,
            SubsumptionParams {
                threshold: 0.8,
                min_generality_ratio: 1.0,
                max_parent_df_fraction: 1.0,
                min_lift: 0.0,
            },
        );
        let df = move |t: TermId| match t.0 {
            0 => 4u64,
            1 => 3,
            _ => 2,
        };
        (
            FacetForest::from_subsumption(&sub, &vocab.freeze(), df),
            vocab,
        )
    }

    #[test]
    fn tree_shape() {
        let (f, _) = forest();
        assert_eq!(f.trees.len(), 1);
        let root = &f.trees[0].root;
        assert_eq!(f.label(root), "politics");
        assert_eq!(f.label(&root.children[0]), "election");
        assert_eq!(f.label(&root.children[0].children[0]), "ballot");
        assert_eq!(f.total_terms(), 3);
        assert_eq!(root.height(), 2);
    }

    #[test]
    fn find_and_edges() {
        let (f, _) = forest();
        assert!(f.find("ballot").is_some());
        assert!(f.find("nothing").is_none());
        let edges = f.edges();
        assert!(edges.contains(&("politics".into(), "election".into())));
        assert!(edges.contains(&("election".into(), "ballot".into())));
    }

    #[test]
    fn render_outline() {
        let (f, _) = forest();
        let text = f.render(10);
        assert!(text.contains("politics (4)"));
        assert!(text.contains("  election (3)"));
    }

    #[test]
    fn labels_resolve_through_the_shared_vocab() {
        // One frozen arena serves every node: no per-node label strings.
        let (f, vocab) = forest();
        for t in &f.trees {
            assert_eq!(f.label(&t.root), vocab.term(t.root.term));
        }
        // A foreign term id resolves to the empty label, not a panic.
        let foreign = TreeNode {
            term: TermId(9999),
            doc_count: 0,
            children: vec![],
        };
        assert_eq!(f.label(&foreign), "");
    }

    #[test]
    fn empty_forest() {
        let f = FacetForest::default();
        assert_eq!(f.total_terms(), 0);
        assert!(f.edges().is_empty());
        assert_eq!(f.render(5), "");
        assert!(f.vocab().is_empty());
    }
}
