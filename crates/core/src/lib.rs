#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # facet-core
//!
//! The paper's primary contribution: **unsupervised extraction of useful
//! facet hierarchies from a text database** (Dakka & Ipeirotis, ICDE
//! 2008).
//!
//! The pipeline has three steps plus hierarchy construction:
//!
//! 1. **Important terms** ([`facet_termx`]): per-document `I(d)` from
//!    named entities, statistical keyphrases, and Wikipedia titles.
//! 2. **Context expansion** ([`facet_resources`]): each important term is
//!    sent to external resources; the retrieved context terms form the
//!    contextualized database `C(D)`.
//! 3. **Comparative frequency analysis** ([`selection`]): terms whose
//!    document frequency *and* log-rank bin both improve from `D` to
//!    `C(D)` are candidate facet terms, ranked by Dunning's
//!    log-likelihood statistic.
//! 4. **Hierarchy construction** ([`subsumption`], [`hierarchy`]):
//!    Sanderson–Croft subsumption organizes the selected terms into
//!    per-facet trees; [`browse`] exposes the resulting OLAP-style
//!    faceted browsing engine.
//!
//! [`pipeline::FacetPipeline`] ties everything together behind one call
//! for one-shot batch runs; [`index::FacetIndex`] is the persistent,
//! incrementally-updatable form of the same engine, serving reads
//! through atomically-swapped [`index::FacetSnapshot`]s; [`baseline`]
//! holds the comparison systems (the raw-subsumption hierarchy of the
//! paper's Figure 5, and a chi-square selection variant for the
//! ablation study).

pub mod baseline;
pub mod browse;
pub mod config;
pub mod evidence;
pub mod hierarchy;
pub mod index;
pub mod persist;
pub mod pipeline;
pub mod selection;
pub mod serve;
pub mod shard;
pub mod subsumption;

pub use baseline::raw_subsumption_terms;
pub use browse::BrowseEngine;
pub use config::PipelineOptions;
pub use evidence::{build_evidence_forest, EvidenceParams, HypernymHints};
pub use hierarchy::{FacetForest, FacetTree, TreeNode};
pub use index::{AppendStats, FacetIndex, FacetSnapshot, IndexError, RepairStats};
pub use persist::STATE_VERSION;
pub use pipeline::{FacetExtraction, FacetPipeline};
pub use selection::{
    select_facet_terms, select_facet_terms_stable, FacetCandidate, SelectionInputs,
    SelectionStatistic,
};
pub use serve::{
    fanout_browse, normalize_query, BrowseResult, FacetServer, ServeCacheStats, ServeHandle,
    ServeSnapshot, ShardView,
};
pub use shard::{ShardedAppendStats, ShardedFacetIndex};
pub use subsumption::{build_subsumption_forest, SubsumptionForest, SubsumptionParams};
