//! The snapshot serving tier: per-shard frozen views, deterministic
//! fan-out browse with merge-at-read, and a query-signature cache.
//!
//! [`crate::shard::ShardedFacetIndex`] publishes one merged
//! [`FacetSnapshot`] per append, which is correct but couples readers to
//! every write: a batch landing on shard 3 republishes state that
//! readers of shards 0–2 never needed to drop. The serving tier
//! decouples them:
//!
//! * **Per-shard frozen views.** Each publish carries one
//!   [`ShardView`] per shard — the shard's frozen vocabulary plus its
//!   sorted per-document contextualized term rows — behind its own
//!   `Arc`. A publish after an append rebuilds *only* the views of
//!   shards that received documents; untouched shards' views are reused
//!   by `Arc` identity, so a write on one shard never invalidates what
//!   readers hold for another.
//! * **Fan-out browse with merge-at-read.** [`fanout_browse`] answers a
//!   query by scanning every shard view independently and merging at
//!   read time: matching documents merge ascending by global id, and
//!   refinement counts merge by element-wise sum over a candidate list
//!   fixed (in term order) by the *global* forest before any shard is
//!   consulted — the same order-discipline as the shard merge, so the
//!   result is identical for every shard count and arrival order.
//! * **Query-signature cache.** [`ServeHandle::browse`] hashes the
//!   normalized query terms — keyed by [`TermId`] through the snapshot's
//!   frozen interner — together with the snapshot generation, and serves
//!   repeated queries from the cached [`BrowseResult`] with zero
//!   re-selection. A generation bump (append or repair) invalidates by
//!   construction: old-generation entries can never match a new-
//!   generation signature and are pruned at publish.
//!
//! Concurrency: one `RwLock` guards the single atomic publication point
//! (the current [`ServeSnapshot`]) and one `Mutex` guards the cache.
//! Both are sanctioned sites in `Lint.toml` (`core::serve`), with
//! cross-thread interleaving covered by this module's tests and
//! `tests/serving.rs`.

use crate::index::{FacetSnapshot, IndexError, RepairStats};
use crate::shard::{ShardedAppendStats, ShardedFacetIndex};
use facet_corpus::Document;
use facet_obs::Recorder;
use facet_textkit::{FrozenVocabulary, TermId};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// One shard's frozen read-side state: the shard-local vocabulary and
/// the shard's contextualized term rows (sorted, shard-local ids).
///
/// A view is immutable; the server publishes a fresh one only for
/// shards whose state changed, so readers comparing `Arc::ptr_eq`
/// across generations can see exactly which shards a write touched.
#[derive(Debug)]
pub struct ShardView {
    shard: usize,
    n_shards: usize,
    vocab: FrozenVocabulary,
    doc_terms: Vec<Vec<TermId>>,
}

impl ShardView {
    /// Number of documents in this shard.
    pub fn n_docs(&self) -> usize {
        self.doc_terms.len()
    }

    /// The round-robin global id of shard-local position `pos`
    /// (documents are partitioned `g % n_shards`, so
    /// `global = pos * n_shards + shard`).
    pub fn global_id(&self, pos: usize) -> u32 {
        (pos * self.n_shards + self.shard) as u32
    }

    /// Scan this shard for documents matching every `selection` label,
    /// appending their global ids to `docs` and adding each matching
    /// document's candidate-term memberships into `counts` (aligned
    /// with `candidates`). A selection label absent from this shard's
    /// vocabulary matches no document here; candidate labels absent
    /// from the shard contribute zero counts.
    fn scan(
        &self,
        selection: &[String],
        candidates: &[String],
        docs: &mut Vec<u32>,
        counts: &mut [u64],
    ) {
        let mut sel: Vec<TermId> = Vec::with_capacity(selection.len());
        for label in selection {
            match self.vocab.get(label) {
                Some(t) => sel.push(t),
                None => return,
            }
        }
        let cand: Vec<Option<TermId>> = candidates.iter().map(|c| self.vocab.get(c)).collect();
        for (pos, row) in self.doc_terms.iter().enumerate() {
            if !sel.iter().all(|t| row.binary_search(t).is_ok()) {
                continue;
            }
            docs.push(self.global_id(pos));
            for (k, c) in cand.iter().enumerate() {
                if let Some(t) = c {
                    if row.binary_search(t).is_ok() {
                        counts[k] += 1;
                    }
                }
            }
        }
    }
}

/// One published serving generation: the merged global snapshot
/// (forest, vocabulary, ranking) plus the per-shard frozen views.
///
/// This is the single atomic publication point — readers obtain the
/// merged state and every shard view in one `Arc` clone, so a browse
/// can never observe the forest of one generation against the shard
/// rows of another.
#[derive(Debug)]
pub struct ServeSnapshot {
    merged: Arc<FacetSnapshot>,
    shards: Vec<Arc<ShardView>>,
}

impl ServeSnapshot {
    /// The index generation this snapshot serves.
    pub fn generation(&self) -> u64 {
        self.merged.generation()
    }

    /// The merged global snapshot (forest, vocabulary, candidates).
    pub fn merged(&self) -> &Arc<FacetSnapshot> {
        &self.merged
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total documents across all shards.
    pub fn n_docs(&self) -> usize {
        self.merged.n_docs()
    }

    /// The frozen view of one shard. The `Arc` identity is stable
    /// across publishes that did not touch the shard.
    pub fn shard_view(&self, shard: usize) -> &Arc<ShardView> {
        &self.shards[shard]
    }
}

/// One served browse answer: the matching documents and the refinement
/// counts a faceted UI renders, at one generation.
///
/// Equality is structural; [`BrowseResult::canonical`] renders the
/// deterministic byte representation used by the cached-vs-uncached
/// identity checks and the load bench's run digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrowseResult {
    /// The generation of the snapshot that answered the query.
    pub generation: u64,
    /// The normalized query (lowercased, sorted, distinct).
    pub query: Vec<String>,
    /// Global ids of the matching documents, ascending.
    pub docs: Vec<u32>,
    /// Refinement `(label, count)` pairs: for each candidate narrowing
    /// term, how many matching documents carry it — sorted by count
    /// descending then label ascending, zero-count candidates omitted
    /// (the [`crate::browse::BrowseEngine::refinements`] discipline).
    pub refinements: Vec<(String, u64)>,
}

impl BrowseResult {
    /// Number of matching documents.
    pub fn total(&self) -> usize {
        self.docs.len()
    }

    /// The canonical byte rendering: two results are byte-identical
    /// here exactly when they are equal.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "generation={}\nquery=", self.generation);
        for (i, q) in self.query.iter().enumerate() {
            if i > 0 {
                out.push('\u{1f}');
            }
            out.push_str(q);
        }
        let _ = write!(out, "\ntotal={}\ndocs=", self.docs.len());
        for (i, d) in self.docs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{d}");
        }
        out.push('\n');
        for (label, count) in &self.refinements {
            let _ = writeln!(out, "refine\t{label}\t{count}");
        }
        out
    }
}

/// Normalize a query: trim, lowercase, drop empties, sort, dedup. Two
/// queries with the same normalization are the same cache entry.
pub fn normalize_query(query: &[&str]) -> Vec<String> {
    let mut terms: Vec<String> = query
        .iter()
        .map(|q| q.trim().to_lowercase())
        .filter(|q| !q.is_empty())
        .collect();
    terms.sort_unstable();
    terms.dedup();
    terms
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// The query signature: FNV-1a over the snapshot generation and the
/// normalized terms keyed by [`TermId`] through the frozen interner
/// (terms unknown to the snapshot hash their bytes under a distinct
/// tag, so "known id 7" can never collide with an unknown string).
fn signature(generation: u64, normalized: &[String], vocab: &FrozenVocabulary) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv1a(&mut hash, &generation.to_le_bytes());
    for term in normalized {
        match vocab.get(term) {
            Some(id) => {
                fnv1a(&mut hash, &[0x01]);
                fnv1a(&mut hash, &id.0.to_le_bytes());
            }
            None => {
                fnv1a(&mut hash, &[0x00]);
                fnv1a(&mut hash, term.as_bytes());
                fnv1a(&mut hash, &[0xff]);
            }
        }
    }
    hash
}

/// The refinement candidates for a normalized selection, fixed by the
/// *global* forest before any shard is consulted (merge-at-read rule
/// 1): the children of the first selected term that names a forest
/// node, or the facet roots when no selected term does (including the
/// empty selection). Candidate order is the forest's deterministic
/// child order; the per-shard counts merge into this fixed list.
fn refinement_candidates(merged: &FacetSnapshot, normalized: &[String]) -> Vec<String> {
    let forest = merged.forest();
    for term in normalized {
        if let Some(node) = forest.find(term) {
            return node
                .children
                .iter()
                .map(|c| forest.label(c).to_string())
                .collect();
        }
    }
    forest
        .trees
        .iter()
        .map(|t| forest.label(&t.root).to_string())
        .collect()
}

/// Answer a query by fan-out over the snapshot's shard views and
/// merge-at-read, bypassing the cache.
///
/// The merge rules that make the result independent of shard count and
/// scan order:
///
/// 1. the refinement candidate list is fixed by the global forest
///    before the fan-out ([`refinement_candidates`]);
/// 2. per-shard refinement counts merge by element-wise sum into that
///    list (sums commute, so shard arrival order cannot matter), and
///    the final ordering — count descending, label ascending, zero
///    counts omitted — is applied once, after the merge;
/// 3. matching documents merge ascending by round-robin *global* id,
///    which is a pure function of (shard, position).
pub fn fanout_browse(snapshot: &ServeSnapshot, query: &[&str]) -> BrowseResult {
    fanout_browse_normalized(snapshot, normalize_query(query))
}

fn fanout_browse_normalized(snapshot: &ServeSnapshot, normalized: Vec<String>) -> BrowseResult {
    let candidates = refinement_candidates(&snapshot.merged, &normalized);
    let mut docs: Vec<u32> = Vec::new();
    let mut counts = vec![0u64; candidates.len()];
    for view in &snapshot.shards {
        view.scan(&normalized, &candidates, &mut docs, &mut counts);
    }
    docs.sort_unstable();
    let mut refinements: Vec<(String, u64)> = candidates
        .into_iter()
        .zip(counts)
        .filter(|(_, c)| *c > 0)
        .collect();
    refinements.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    BrowseResult {
        generation: snapshot.generation(),
        query: normalized,
        docs,
        refinements,
    }
}

/// Cache counters, cumulative since the server was built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeCacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that fell through to a fan-out browse.
    pub misses: u64,
    /// Entries dropped by the FIFO capacity bound.
    pub evictions: u64,
    /// Entries dropped because a publish moved the generation past them.
    pub invalidations: u64,
    /// Entries currently resident.
    pub len: usize,
}

/// The query-signature cache. Keyed `(generation, signature)` in a
/// `BTreeMap` so pruning old generations is a deterministic range
/// split; each bucket stores the full normalized query alongside the
/// result, so a signature collision degrades to a miss instead of a
/// wrong answer. FIFO-bounded.
/// One cached result with the full normalized query it answers (the
/// collision guard: a signature match alone is not an answer).
type CacheBucket = Vec<(Vec<String>, Arc<BrowseResult>)>;

#[derive(Debug)]
struct QueryCache {
    entries: BTreeMap<(u64, u64), CacheBucket>,
    order: VecDeque<(u64, u64)>,
    capacity: usize,
    stats: ServeCacheStats,
}

impl QueryCache {
    fn new(capacity: usize) -> Self {
        Self {
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            stats: ServeCacheStats::default(),
        }
    }

    fn lookup(&mut self, generation: u64, sig: u64, key: &[String]) -> Option<Arc<BrowseResult>> {
        let found = self
            .entries
            .get(&(generation, sig))
            .and_then(|bucket| bucket.iter().find(|(k, _)| k == key))
            .map(|(_, r)| Arc::clone(r));
        match &found {
            Some(_) => self.stats.hits += 1,
            None => self.stats.misses += 1,
        }
        found
    }

    fn insert(&mut self, generation: u64, sig: u64, key: Vec<String>, result: Arc<BrowseResult>) {
        let bucket = self.entries.entry((generation, sig)).or_default();
        if bucket.iter().any(|(k, _)| *k == key) {
            return; // two racing misses computed the same entry
        }
        if bucket.is_empty() {
            self.order.push_back((generation, sig));
        }
        bucket.push((key, result));
        self.stats.len += 1;
        while self.stats.len > self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            if let Some(bucket) = self.entries.remove(&oldest) {
                self.stats.len -= bucket.len();
                self.stats.evictions += bucket.len() as u64;
            }
        }
    }

    /// Drop every entry below `generation` (publish-time invalidation).
    fn prune_below(&mut self, generation: u64) {
        let keep = self.entries.split_off(&(generation, 0));
        let stale = std::mem::replace(&mut self.entries, keep);
        if stale.is_empty() {
            return;
        }
        let dropped: usize = stale.values().map(Vec::len).sum();
        self.stats.len -= dropped;
        self.stats.invalidations += dropped as u64;
        self.order.retain(|k| k.0 >= generation);
    }
}

#[derive(Debug)]
struct ServeShared {
    current: RwLock<Arc<ServeSnapshot>>,
    cache: Mutex<QueryCache>,
    recorder: Recorder,
}

/// A cheap, clonable, thread-safe reader handle onto a [`FacetServer`].
///
/// Handles stay valid for the life of the shared state (they hold an
/// `Arc`), independent of the server's lifetime parameter — spawn them
/// across reader threads freely.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    shared: Arc<ServeShared>,
}

impl ServeHandle {
    /// The currently published serving snapshot: one `Arc` clone under
    /// a short read lock. Pin it to compare cached and uncached answers
    /// at one generation.
    pub fn snapshot(&self) -> Arc<ServeSnapshot> {
        self.shared.current.read().clone()
    }

    /// The published generation.
    pub fn generation(&self) -> u64 {
        self.snapshot().generation()
    }

    /// Cumulative cache counters.
    pub fn cache_stats(&self) -> ServeCacheStats {
        self.shared.cache.lock().stats
    }

    /// Answer a query through the signature cache: a repeat of a
    /// normalized query at an unchanged generation returns the cached
    /// result with zero re-selection. Records `serve.hit` /
    /// `serve.miss` counters and `serve.{hit,miss}_us` latency
    /// histograms on the server's recorder.
    pub fn browse(&self, query: &[&str]) -> Arc<BrowseResult> {
        let normalized = normalize_query(query);
        let snapshot = self.snapshot();
        let generation = snapshot.generation();
        let sig = signature(generation, &normalized, snapshot.merged.vocab());
        let hit_hist = self.shared.recorder.histogram("serve.hit_us");
        let cached = hit_hist.time_if(|| {
            self.shared
                .cache
                .lock()
                .lookup(generation, sig, &normalized)
        });
        if let Some(result) = cached {
            self.shared.recorder.incr("serve.hit");
            return result;
        }
        self.shared.recorder.incr("serve.miss");
        self.shared.recorder.incr("serve.fanout");
        let miss_hist = self.shared.recorder.histogram("serve.miss_us");
        let result =
            Arc::new(miss_hist.time_if(|| fanout_browse_normalized(&snapshot, normalized.clone())));
        self.shared
            .cache
            .lock()
            .insert(generation, sig, normalized, Arc::clone(&result));
        result
    }

    /// Answer a query by a fresh fan-out browse over the current
    /// snapshot, never touching the cache (the re-selection path the
    /// cache is measured against). Records `serve.fanout`.
    pub fn browse_uncached(&self, query: &[&str]) -> BrowseResult {
        self.shared.recorder.incr("serve.fanout");
        fanout_browse(&self.snapshot(), query)
    }
}

/// The serving tier over a [`ShardedFacetIndex`]: owns the writer,
/// republishes per-shard views after each append/repair, and hands out
/// [`ServeHandle`]s for concurrent readers.
pub struct FacetServer<'a> {
    index: ShardedFacetIndex<'a>,
    shared: Arc<ServeShared>,
}

impl<'a> FacetServer<'a> {
    /// Wrap an index, publishing its current state. Cache capacity
    /// defaults to 4096 entries (FIFO).
    pub fn new(index: ShardedFacetIndex<'a>) -> Self {
        Self::with_cache_capacity(index, 4096)
    }

    /// Wrap an index with an explicit cache capacity (clamped ≥ 1).
    pub fn with_cache_capacity(index: ShardedFacetIndex<'a>, capacity: usize) -> Self {
        let recorder = index.recorder().clone();
        let shards = (0..index.n_shards())
            .map(|i| Arc::new(build_view(&index, i)))
            .collect();
        let snapshot = Arc::new(ServeSnapshot {
            merged: index.snapshot(),
            shards,
        });
        Self {
            index,
            shared: Arc::new(ServeShared {
                current: RwLock::new(snapshot),
                cache: Mutex::new(QueryCache::new(capacity)),
                recorder,
            }),
        }
    }

    /// A reader handle; clone freely across threads.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The wrapped index (read-only).
    pub fn index(&self) -> &ShardedFacetIndex<'a> {
        &self.index
    }

    /// The currently published serving snapshot.
    pub fn snapshot(&self) -> Arc<ServeSnapshot> {
        self.shared.current.read().clone()
    }

    /// Append a batch through the index, then republish: only the views
    /// of shards that received documents are rebuilt; every other
    /// shard's view is carried over by `Arc` identity. Cache entries of
    /// older generations are pruned.
    ///
    /// # Errors
    /// Propagates [`IndexError`] from the index; the published serving
    /// snapshot is left untouched on error.
    pub fn append(&mut self, batch: Vec<Document>) -> Result<ShardedAppendStats, IndexError> {
        let stats = self.index.append(batch)?;
        let docs_per_shard = stats.docs_per_shard.clone();
        self.republish(|shard| docs_per_shard.get(shard).is_some_and(|&d| d > 0));
        Ok(stats)
    }

    /// Run a repair pass through the index. A pass that re-queried
    /// nothing publishes nothing; otherwise every shard view is rebuilt
    /// (repair can rewrite any shard's term rows) and old cache
    /// generations are pruned.
    ///
    /// # Errors
    /// Propagates [`IndexError`] from the index; the published serving
    /// snapshot is left untouched on error.
    pub fn repair(&mut self) -> Result<RepairStats, IndexError> {
        let stats = self.index.repair()?;
        if stats.requeried_terms > 0 {
            self.republish(|_| true);
        }
        Ok(stats)
    }

    /// Swap in a crash-recovered index (see [`crate::persist`]) behind
    /// the live reader handles. The recovered index's generation must be
    /// at or past the published one — determinism makes equal
    /// generations equal content, so readers can only move forward —
    /// and the swap republishes every shard view and prunes cache
    /// entries of older generations, exactly like an append's publish.
    /// Records `serve.reopen`.
    ///
    /// This is a sanctioned publication point (`Lint.toml` C2); the
    /// cross-thread interleaving is covered by
    /// [`tests::reopen_swaps_behind_live_readers`].
    ///
    /// # Errors
    /// [`IndexError::StaleReopen`] when the recovered generation is
    /// older than the published one; the published snapshot, the cache,
    /// and the wrapped index are all left untouched.
    pub fn reopen(&mut self, recovered: ShardedFacetIndex<'a>) -> Result<u64, IndexError> {
        let published = self.shared.current.read().generation();
        let generation = recovered.snapshot().generation();
        if generation < published {
            return Err(IndexError::StaleReopen {
                published,
                recovered: generation,
            });
        }
        self.index = recovered;
        let shards = (0..self.index.n_shards())
            .map(|i| Arc::new(build_view(&self.index, i)))
            .collect();
        let snapshot = Arc::new(ServeSnapshot {
            merged: self.index.snapshot(),
            shards,
        });
        *self.shared.current.write() = snapshot;
        self.shared.cache.lock().prune_below(generation);
        self.shared.recorder.incr("serve.reopen");
        Ok(generation)
    }

    fn republish(&self, changed: impl Fn(usize) -> bool) {
        let previous = self.shared.current.read().clone();
        let shards = (0..self.index.n_shards())
            .map(|i| {
                if i < previous.shards.len() && !changed(i) {
                    Arc::clone(&previous.shards[i])
                } else {
                    Arc::new(build_view(&self.index, i))
                }
            })
            .collect();
        let snapshot = Arc::new(ServeSnapshot {
            merged: self.index.snapshot(),
            shards,
        });
        let generation = snapshot.generation();
        *self.shared.current.write() = snapshot;
        self.shared.cache.lock().prune_below(generation);
        self.shared.recorder.incr("serve.publish");
    }
}

fn build_view(index: &ShardedFacetIndex<'_>, shard: usize) -> ShardView {
    let (vocab, doc_terms) = index.shard_read_state(shard);
    ShardView {
        shard,
        n_shards: index.n_shards(),
        vocab,
        doc_terms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineOptions;
    use facet_corpus::DocId;
    use facet_resources::ContextResource;
    use facet_termx::TermExtractor;
    use std::collections::HashMap;

    struct FixedExtractor;
    impl TermExtractor for FixedExtractor {
        fn name(&self) -> &'static str {
            "Fixed"
        }
        fn extract(&self, text: &str) -> Vec<String> {
            let mut out = Vec::new();
            for entity in ["jacques chirac", "angela merkel", "tony blair"] {
                let needle: String = entity
                    .split(' ')
                    .map(|w| {
                        let mut c = w.chars();
                        c.next()
                            .map(|f| f.to_uppercase().to_string())
                            .unwrap_or_default()
                            + c.as_str()
                    })
                    .collect::<Vec<_>>()
                    .join(" ");
                if text.contains(&needle) {
                    out.push(entity.to_string());
                }
            }
            out
        }
    }

    struct FixedResource(HashMap<&'static str, Vec<&'static str>>);
    impl FixedResource {
        fn new() -> Self {
            let mut map = HashMap::new();
            map.insert("jacques chirac", vec!["political leaders", "france"]);
            map.insert("angela merkel", vec!["political leaders", "germany"]);
            map.insert("tony blair", vec!["political leaders", "britain"]);
            Self(map)
        }
    }
    impl ContextResource for FixedResource {
        fn name(&self) -> &'static str {
            "Fixed"
        }
        fn context_terms(&self, term: &str) -> Vec<String> {
            self.0
                .get(term)
                .map(|v| v.iter().map(|s| s.to_string()).collect())
                .unwrap_or_default()
        }
    }

    fn corpus(n: usize) -> Vec<Document> {
        let texts = [
            "Jacques Chirac discussed matters with advisers in the capital.",
            "Angela Merkel spoke with ministers about the budget.",
            "Tony Blair met union leaders over the strike.",
            "Jacques Chirac and Angela Merkel held a joint summit briefing.",
        ];
        (0..n)
            .map(|i| Document {
                id: DocId(i as u32),
                source: 0,
                day: 0,
                title: "Story".into(),
                text: texts[i % texts.len()].into(),
            })
            .collect()
    }

    fn options() -> PipelineOptions {
        PipelineOptions {
            top_k: 20,
            ..Default::default()
        }
    }

    fn server<'a>(
        n: usize,
        docs: usize,
        e: &'a FixedExtractor,
        r: &'a FixedResource,
    ) -> FacetServer<'a> {
        let index = ShardedFacetIndex::build(corpus(docs), n, vec![e], vec![r], options()).unwrap();
        FacetServer::new(index)
    }

    #[test]
    fn normalization_sorts_dedups_and_lowercases() {
        assert_eq!(
            normalize_query(&["France", "  POLITICAL LEADERS ", "france", ""]),
            vec!["france".to_string(), "political leaders".to_string()]
        );
    }

    #[test]
    fn signature_distinguishes_generation_and_terms() {
        let mut v = facet_textkit::Vocabulary::new();
        v.intern("france");
        let frozen = v.freeze();
        let q1 = vec!["france".to_string()];
        let q2 = vec!["germany".to_string()];
        assert_ne!(signature(1, &q1, &frozen), signature(2, &q1, &frozen));
        assert_ne!(signature(1, &q1, &frozen), signature(1, &q2, &frozen));
        assert_eq!(signature(3, &q1, &frozen), signature(3, &q1, &frozen));
    }

    #[test]
    fn fanout_matches_browse_engine_on_the_merged_snapshot() {
        let e = FixedExtractor;
        let r = FixedResource::new();
        let srv = server(3, 24, &e, &r);
        let snap = srv.snapshot();
        let merged = snap.merged();
        let engine = merged.browse();
        for query in [vec![], vec!["political leaders"], vec!["france"]] {
            let result = fanout_browse(&snap, &query);
            // Documents match the engine's selection.
            let sel: Vec<TermId> = query.iter().filter_map(|l| merged.vocab().get(l)).collect();
            let expected: Vec<u32> = engine.select(&sel).iter().map(|d| d.0).collect();
            assert_eq!(result.docs, expected, "query {query:?}");
            // Refinements match the engine's counts under the same rule.
            let node = query.iter().find_map(|l| merged.forest().find(l));
            let expected_refs: Vec<(String, u64)> = engine
                .refinements(&sel, node)
                .into_iter()
                .map(|(_, label, count)| (label, count as u64))
                .collect();
            assert_eq!(result.refinements, expected_refs, "query {query:?}");
        }
    }

    #[test]
    fn fanout_is_identical_across_shard_counts() {
        let e = FixedExtractor;
        let r = FixedResource::new();
        let baseline: Vec<String> = {
            let r = FixedResource::new();
            let srv = server(1, 24, &e, &r);
            let snap = srv.snapshot();
            ["", "political leaders", "france", "germany", "unknown term"]
                .iter()
                .map(|q| fanout_browse(&snap, &[q]).canonical())
                .collect()
        };
        for n in [2, 3, 4, 8] {
            let srv = server(n, 24, &e, &r);
            let snap = srv.snapshot();
            let got: Vec<String> = ["", "political leaders", "france", "germany", "unknown term"]
                .iter()
                .map(|q| fanout_browse(&snap, &[q]).canonical())
                .collect();
            assert_eq!(got, baseline, "{n} shards must serve identical answers");
        }
    }

    #[test]
    fn cached_result_is_byte_identical_to_uncached() {
        let e = FixedExtractor;
        let r = FixedResource::new();
        let srv = server(3, 24, &e, &r);
        let h = srv.handle();
        for q in [vec![], vec!["political leaders"], vec!["france", "germany"]] {
            let uncached = h.browse_uncached(&q);
            let first = h.browse(&q); // miss: computes and fills
            let second = h.browse(&q); // hit: served from the cache
            assert!(Arc::ptr_eq(&first, &second), "second lookup was not a hit");
            assert_eq!(uncached.canonical(), second.canonical());
        }
        let stats = h.cache_stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.len, 3);
    }

    #[test]
    fn append_bumps_generation_and_invalidates() {
        let e = FixedExtractor;
        let r = FixedResource::new();
        let index = ShardedFacetIndex::build(corpus(12), 3, vec![&e], vec![&r], options()).unwrap();
        let mut srv = FacetServer::new(index);
        let h = srv.handle();
        let before = h.browse(&["political leaders"]);
        assert_eq!(before.generation, 1);
        assert_eq!(h.cache_stats().len, 1);

        srv.append(corpus(12)).unwrap();
        assert_eq!(h.generation(), 2);
        let stats = h.cache_stats();
        assert_eq!(stats.len, 0, "publish pruned the stale generation");
        assert_eq!(stats.invalidations, 1);

        let after = h.browse(&["political leaders"]);
        assert_eq!(after.generation, 2);
        assert_eq!(after.total(), 24, "served fresh counts, not stale ones");
        assert_eq!(h.cache_stats().misses, 2, "the re-ask was a miss");
        // The pinned pre-append result is untouched (frozen views).
        assert_eq!(before.total(), 12);
    }

    #[test]
    fn append_reuses_views_of_untouched_shards() {
        let e = FixedExtractor;
        let r = FixedResource::new();
        // 3 shards, 9 docs: appending 1 doc lands on shard 9 % 3 = 0.
        let index = ShardedFacetIndex::build(corpus(9), 3, vec![&e], vec![&r], options()).unwrap();
        let mut srv = FacetServer::new(index);
        let old = srv.snapshot();
        let stats = srv.append(corpus(1)).unwrap();
        assert_eq!(stats.docs_per_shard, vec![1, 0, 0]);
        let new = srv.snapshot();
        assert!(
            !Arc::ptr_eq(old.shard_view(0), new.shard_view(0)),
            "the written shard republished its view"
        );
        for shard in [1, 2] {
            assert!(
                Arc::ptr_eq(old.shard_view(shard), new.shard_view(shard)),
                "shard {shard} was untouched; its view must be reused"
            );
        }
    }

    #[test]
    fn repair_republishes_and_invalidates() {
        let e = FixedExtractor;
        let faulty = facet_resources::FaultyResource::new(
            FixedResource::new(),
            facet_resources::FaultPlan::seeded(7, 1000),
            facet_resources::VirtualClock::new(),
        );
        let index =
            ShardedFacetIndex::build(corpus(12), 2, vec![&e], vec![&faulty], options()).unwrap();
        let mut srv = FacetServer::new(index);
        let h = srv.handle();
        assert!(!srv.snapshot().merged().is_fully_covered());
        h.browse(&["political leaders"]);
        assert_eq!(h.cache_stats().len, 1);

        faulty.heal();
        let stats = srv.repair().unwrap();
        assert!(stats.repaired_terms >= 3);
        assert_eq!(h.generation(), stats.generation);
        assert_eq!(h.cache_stats().len, 0, "repair invalidated the cache");
        assert!(srv.snapshot().merged().is_fully_covered());

        // A converged repair is a no-op: no republish, cache kept.
        let h_result = h.browse(&["political leaders"]);
        let before = srv.snapshot().generation();
        let stats = srv.repair().unwrap();
        assert_eq!(stats.requeried_terms, 0);
        assert_eq!(srv.snapshot().generation(), before);
        assert!(Arc::ptr_eq(&h.browse(&["political leaders"]), &h_result));
    }

    #[test]
    fn fifo_capacity_evicts_oldest() {
        let e = FixedExtractor;
        let r = FixedResource::new();
        let index = ShardedFacetIndex::build(corpus(12), 2, vec![&e], vec![&r], options()).unwrap();
        let srv = FacetServer::with_cache_capacity(index, 2);
        let h = srv.handle();
        h.browse(&["france"]);
        h.browse(&["germany"]);
        h.browse(&["britain"]); // evicts "france"
        let stats = h.cache_stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.evictions, 1);
        h.browse(&["france"]); // miss again
        assert_eq!(h.cache_stats().misses, 4);
    }

    #[test]
    fn unknown_query_terms_match_nothing_and_cache() {
        let e = FixedExtractor;
        let r = FixedResource::new();
        let srv = server(2, 8, &e, &r);
        let h = srv.handle();
        let result = h.browse(&["never seen anywhere"]);
        assert_eq!(result.total(), 0);
        assert!(result.refinements.is_empty());
        let again = h.browse(&["never seen anywhere"]);
        assert!(Arc::ptr_eq(&result, &again));
    }

    #[test]
    fn serve_counters_recorded() {
        let e = FixedExtractor;
        let r = FixedResource::new();
        let recorder = Recorder::enabled();
        let index = ShardedFacetIndex::build(corpus(12), 2, vec![&e], vec![&r], options())
            .unwrap()
            .with_recorder(recorder.clone());
        let mut srv = FacetServer::new(index);
        let h = srv.handle();
        h.browse(&["france"]);
        h.browse(&["france"]);
        h.browse_uncached(&["france"]);
        srv.append(corpus(4)).unwrap();
        let counts = recorder.snapshot_counts_only();
        assert_eq!(counts["counter.serve.hit"], 1);
        assert_eq!(counts["counter.serve.miss"], 1);
        assert_eq!(counts["counter.serve.fanout"], 2);
        assert_eq!(counts["counter.serve.publish"], 1);
    }

    /// Two-thread interleaving over the cache race (the C1-sanctioned
    /// site): racing readers of the same cold query both answer
    /// correctly whichever one fills the cache, and a writer
    /// republishing mid-stream never lets a reader observe a result
    /// whose generation disagrees with its content.
    #[test]
    fn concurrent_readers_race_the_cache_safely() {
        let e = FixedExtractor;
        let r = FixedResource::new();
        let srv = server(3, 24, &e, &r);
        let h = srv.handle();
        let expected = h.browse_uncached(&["political leaders"]).canonical();
        std::thread::scope(|s| {
            let mut joins = Vec::new();
            for _ in 0..4 {
                let h = h.clone();
                let expected = expected.clone();
                joins.push(s.spawn(move || {
                    for _ in 0..50 {
                        let got = h.browse(&["political leaders"]);
                        assert_eq!(got.canonical(), expected);
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        });
        let stats = h.cache_stats();
        assert_eq!(stats.hits + stats.misses, 200);
        assert!(stats.hits >= 196, "at most one miss per racing thread");
    }

    /// Interleaving coverage for the `reopen` publication point (C2):
    /// readers browse continuously while the writer swaps in a
    /// recovered index mid-stream. Every answer must be internally
    /// consistent with its own generation, generations must never move
    /// backwards, and a stale recovered index must be rejected without
    /// disturbing what readers see.
    #[test]
    fn reopen_swaps_behind_live_readers() {
        let e = FixedExtractor;
        let r = FixedResource::new();
        let r2 = FixedResource::new();
        let index = ShardedFacetIndex::build(corpus(12), 2, vec![&e], vec![&r], options()).unwrap();
        // "Recovered" stand-in: a deterministic rebuild one append ahead.
        let mut ahead =
            ShardedFacetIndex::build(corpus(12), 2, vec![&e], vec![&r2], options()).unwrap();
        ahead.append(corpus(6)).unwrap();
        let mut srv = FacetServer::new(index);
        let h = srv.handle();
        let at_gen1 = h.browse_uncached(&["political leaders"]).canonical();
        std::thread::scope(|s| {
            let reader = {
                let h = h.clone();
                s.spawn(move || {
                    let mut last_generation = 0;
                    for _ in 0..200 {
                        let got = h.browse(&["political leaders"]);
                        assert!(got.generation >= last_generation, "generation regressed");
                        last_generation = got.generation;
                        let expected = fanout_browse(&h.snapshot(), &["political leaders"]);
                        if expected.generation == got.generation {
                            assert_eq!(got.canonical(), expected.canonical());
                        }
                    }
                })
            };
            let generation = srv.reopen(ahead).expect("reopen");
            assert_eq!(generation, 2);
            reader.join().unwrap();
        });
        // Readers now see the recovered state, not the original.
        let after = h.browse(&["political leaders"]);
        assert_eq!(after.generation, 2);
        assert_eq!(after.total(), 18);
        assert_ne!(after.canonical(), at_gen1);

        // A stale index (generation 1 < published 2) is rejected and
        // nothing readers hold changes.
        let r3 = FixedResource::new();
        let stale =
            ShardedFacetIndex::build(corpus(12), 2, vec![&e], vec![&r3], options()).unwrap();
        let err = srv.reopen(stale).unwrap_err();
        assert_eq!(
            err,
            IndexError::StaleReopen {
                published: 2,
                recovered: 1
            }
        );
        assert_eq!(h.generation(), 2);
    }

    #[test]
    fn concurrent_append_keeps_readers_consistent() {
        let e = FixedExtractor;
        let r = FixedResource::new();
        let index = ShardedFacetIndex::build(corpus(8), 2, vec![&e], vec![&r], options()).unwrap();
        let mut srv = FacetServer::new(index);
        let h = srv.handle();
        std::thread::scope(|s| {
            let reader = {
                let h = h.clone();
                s.spawn(move || {
                    let mut comparisons = 0usize;
                    while comparisons < 100 {
                        let snapshot = h.snapshot();
                        let uncached = fanout_browse(&snapshot, &["political leaders"]);
                        let cached = h.browse(&["political leaders"]);
                        // Only same-generation answers are comparable:
                        // the writer may publish between the two calls.
                        if cached.generation == uncached.generation {
                            assert_eq!(cached.canonical(), uncached.canonical());
                            comparisons += 1;
                        }
                    }
                    comparisons
                })
            };
            for _ in 0..6 {
                srv.append(corpus(2)).unwrap();
            }
            assert_eq!(reader.join().unwrap(), 100);
        });
        assert_eq!(h.snapshot().n_docs(), 20);
    }
}
