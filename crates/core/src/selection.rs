//! Step 3: comparative term-frequency analysis (Section IV-C, Figure 3).
//!
//! A term `t` becomes a candidate facet term iff
//!
//! * `Shift_f(t) = df_C(t) − df(t) > 0`, and
//! * `Shift_r(t) = B_D(t) − B_C(t) > 0` with `B(t) = ⌈log2 Rank(t)⌉`,
//!
//! and candidates are ranked by the log-likelihood statistic `−log λ_t`
//! (or, for the ablation study, by chi-square).

use facet_stats::{chi_square_df, log_likelihood_ratio, rank_bins};
use facet_textkit::{TermId, Vocabulary};

/// Which significance statistic ranks the candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStatistic {
    /// Dunning's log-likelihood ratio (the paper's choice).
    LogLikelihood,
    /// Pearson chi-square (implemented for the ablation study; the paper
    /// explains why it is unsuitable under power-law term frequencies).
    ChiSquare,
}

/// A selected candidate facet term with its statistics.
#[derive(Debug, Clone)]
pub struct FacetCandidate {
    /// The term.
    pub term: TermId,
    /// Document frequency in the original database.
    pub df: u64,
    /// Document frequency in the contextualized database.
    pub df_c: u64,
    /// `Shift_f(t)`.
    pub shift_f: i64,
    /// `Shift_r(t)`.
    pub shift_r: i64,
    /// The ranking statistic (−log λ or chi-square).
    pub score: f64,
}

/// Inputs to the selection step.
#[derive(Debug, Clone, Copy)]
pub struct SelectionInputs<'a> {
    /// Document-frequency table of `D`, indexed by term id.
    pub df: &'a [u64],
    /// Document-frequency table of `C(D)`, indexed by term id (may be
    /// longer than `df`: context terms extend the vocabulary).
    pub df_c: &'a [u64],
    /// Number of documents (same in `D` and `C(D)`).
    pub n_docs: u64,
}

/// Collect every candidate passing the shift and `min_df_c` filters,
/// unranked. The candidate *set* depends only on the frequency tables
/// (rank bins use competition ranking, so ties share a bin), never on
/// term-id assignment order.
fn collect_candidates(
    inputs: SelectionInputs<'_>,
    statistic: SelectionStatistic,
    min_df_c: u64,
) -> Vec<FacetCandidate> {
    let vocab_len = inputs.df_c.len().max(inputs.df.len());
    // Frequency tables padded to the full vocabulary.
    let mut df = inputs.df.to_vec();
    df.resize(vocab_len, 0);
    let mut df_c = inputs.df_c.to_vec();
    df_c.resize(vocab_len, 0);

    let bins_d = rank_bins(&df);
    let bins_c = rank_bins(&df_c);

    let mut candidates: Vec<FacetCandidate> = Vec::new();
    for i in 0..vocab_len {
        let shift_f = df_c[i] as i64 - df[i] as i64;
        let shift_r = bins_d[i] as i64 - bins_c[i] as i64;
        if shift_f <= 0 || shift_r <= 0 || df_c[i] < min_df_c {
            continue;
        }
        let score = match statistic {
            SelectionStatistic::LogLikelihood => {
                log_likelihood_ratio(df[i], df_c[i], inputs.n_docs)
            }
            SelectionStatistic::ChiSquare => chi_square_df(df[i], df_c[i], inputs.n_docs),
        };
        candidates.push(FacetCandidate {
            term: TermId(i as u32),
            df: df[i],
            df_c: df_c[i],
            shift_f,
            shift_r,
            score,
        });
    }
    candidates
}

/// Run the selection: returns candidates with both shifts positive,
/// ranked by `statistic` descending, truncated to `top_k`.
/// `min_df_c` filters terms too rare in `C(D)` to be meaningful facets.
///
/// Score ties break on [`TermId`], i.e. interning order. When the same
/// corpus can be reached through different interning histories (batch
/// build vs incremental appends), use [`select_facet_terms_stable`],
/// whose ordering is independent of id assignment.
pub fn select_facet_terms(
    inputs: SelectionInputs<'_>,
    statistic: SelectionStatistic,
    top_k: usize,
    min_df_c: u64,
) -> Vec<FacetCandidate> {
    let mut candidates = collect_candidates(inputs, statistic, min_df_c);
    candidates.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.term.cmp(&b.term))
    });
    candidates.truncate(top_k);
    candidates
}

/// [`select_facet_terms`] with an interning-order-independent ranking:
/// score ties break on the term *string* (then id, unreachable for
/// distinct strings in one vocabulary).
///
/// This is the ordering the incremental [`crate::index::FacetIndex`] and
/// the one-shot [`crate::pipeline::FacetPipeline`] share: appending a
/// corpus in batches interleaves context-term interning with later
/// batches' corpus terms, so ids differ from a one-shot build, but the
/// string-ranked candidate list comes out identical.
pub fn select_facet_terms_stable(
    inputs: SelectionInputs<'_>,
    statistic: SelectionStatistic,
    top_k: usize,
    min_df_c: u64,
    vocab: &Vocabulary,
) -> Vec<FacetCandidate> {
    let mut candidates = collect_candidates(inputs, statistic, min_df_c);
    candidates.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| {
                vocab
                    .try_term(a.term)
                    .unwrap_or("")
                    .cmp(vocab.try_term(b.term).unwrap_or(""))
            })
            .then_with(|| a.term.cmp(&b.term))
    });
    candidates.truncate(top_k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a scenario: term 0 is a background word (frequent in both),
    /// term 1 is a facet term (absent in D, frequent in C), term 2 shrinks,
    /// terms 3.. are mid-frequency fillers that keep ranks meaningful.
    fn tables() -> (Vec<u64>, Vec<u64>) {
        let mut df = vec![900, 0, 50];
        let mut df_c = vec![905, 420, 30];
        for i in 0..20 {
            df.push(300 - i * 10);
            df_c.push(305 - i * 10);
        }
        (df, df_c)
    }

    #[test]
    fn facet_term_selected_background_not() {
        let (df, df_c) = tables();
        let out = select_facet_terms(
            SelectionInputs {
                df: &df,
                df_c: &df_c,
                n_docs: 1000,
            },
            SelectionStatistic::LogLikelihood,
            100,
            1,
        );
        let terms: Vec<u32> = out.iter().map(|c| c.term.0).collect();
        assert!(terms.contains(&1), "facet term must be selected: {terms:?}");
        assert!(!terms.contains(&0), "background word must not be selected");
        assert!(!terms.contains(&2), "shrinking term must not be selected");
    }

    #[test]
    fn ranked_by_score_descending() {
        let (df, df_c) = tables();
        let out = select_facet_terms(
            SelectionInputs {
                df: &df,
                df_c: &df_c,
                n_docs: 1000,
            },
            SelectionStatistic::LogLikelihood,
            100,
            1,
        );
        for w in out.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn top_k_truncates() {
        let (df, df_c) = tables();
        let out = select_facet_terms(
            SelectionInputs {
                df: &df,
                df_c: &df_c,
                n_docs: 1000,
            },
            SelectionStatistic::LogLikelihood,
            1,
            1,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn min_df_c_filters() {
        // Background terms (ids 2..) keep the rank structure of D
        // non-degenerate so absent terms land in a high bin.
        let df = vec![0, 0, 100, 50, 30, 10];
        let df_c = vec![2, 50, 100, 50, 30, 10];
        let out = select_facet_terms(
            SelectionInputs {
                df: &df,
                df_c: &df_c,
                n_docs: 100,
            },
            SelectionStatistic::LogLikelihood,
            10,
            3,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].term, TermId(1));
    }

    #[test]
    fn context_extends_vocabulary() {
        // df_c longer than df: the new term ids must be handled.
        let df = vec![10u64];
        let df_c = vec![12u64, 40];
        let out = select_facet_terms(
            SelectionInputs {
                df: &df,
                df_c: &df_c,
                n_docs: 100,
            },
            SelectionStatistic::LogLikelihood,
            10,
            1,
        );
        assert!(out.iter().any(|c| c.term == TermId(1)));
    }

    #[test]
    fn stable_ranking_breaks_ties_by_string_not_id() {
        // "zebra" is interned before "apple"; both have identical
        // statistics, so their scores tie exactly.
        let mut vocab = Vocabulary::new();
        vocab.intern("zebra");
        vocab.intern("apple");
        let mut df = vec![0u64, 0];
        let mut df_c = vec![420u64, 420];
        for i in 0..20 {
            vocab.intern(&format!("filler{i:02}"));
            df.push(300 - i * 10);
            df_c.push(305 - i * 10);
        }
        let inputs = SelectionInputs {
            df: &df,
            df_c: &df_c,
            n_docs: 1000,
        };
        let plain = select_facet_terms(inputs, SelectionStatistic::LogLikelihood, 100, 1);
        let stable =
            select_facet_terms_stable(inputs, SelectionStatistic::LogLikelihood, 100, 1, &vocab);
        // Same candidate set either way.
        let mut p: Vec<u32> = plain.iter().map(|c| c.term.0).collect();
        let mut s: Vec<u32> = stable.iter().map(|c| c.term.0).collect();
        p.sort_unstable();
        s.sort_unstable();
        assert_eq!(p, s);
        // Tie order: plain follows ids (zebra first), stable follows
        // strings (apple first).
        assert_eq!(plain[0].term, TermId(0), "id order puts zebra first");
        assert_eq!(stable[0].term, TermId(1), "string order puts apple first");
        assert_eq!(stable[1].term, TermId(0));
    }

    #[test]
    fn chi_square_variant_runs() {
        let (df, df_c) = tables();
        let out = select_facet_terms(
            SelectionInputs {
                df: &df,
                df_c: &df_c,
                n_docs: 1000,
            },
            SelectionStatistic::ChiSquare,
            100,
            1,
        );
        assert!(out.iter().any(|c| c.term == TermId(1)));
    }

    #[test]
    fn shifts_recorded() {
        let (df, df_c) = tables();
        let out = select_facet_terms(
            SelectionInputs {
                df: &df,
                df_c: &df_c,
                n_docs: 1000,
            },
            SelectionStatistic::LogLikelihood,
            100,
            1,
        );
        let facet = out.iter().find(|c| c.term == TermId(1)).unwrap();
        assert_eq!(facet.shift_f, 420);
        assert!(facet.shift_r > 0);
        assert_eq!(facet.df, 0);
        assert_eq!(facet.df_c, 420);
    }
}
