#![allow(clippy::unwrap_used)]

//! Property-based tests for the core pipeline invariants.

use facet_core::{
    build_subsumption_forest, select_facet_terms, FacetForest, SelectionInputs, SelectionStatistic,
    SubsumptionParams,
};
use facet_textkit::{TermId, Vocabulary};
use proptest::prelude::*;

/// Strategy: a pair of df tables over the same vocabulary with
/// `df_c[i] >= df[i]` (context only ever adds documents).
fn df_tables() -> impl Strategy<Value = (Vec<u64>, Vec<u64>, u64)> {
    proptest::collection::vec((0u64..50, 0u64..30), 2..80).prop_map(|pairs| {
        let df: Vec<u64> = pairs.iter().map(|&(d, _)| d).collect();
        let df_c: Vec<u64> = pairs.iter().map(|&(d, extra)| d + extra).collect();
        let n = df_c.iter().copied().max().unwrap_or(0).max(1) + 10;
        (df, df_c, n)
    })
}

proptest! {
    /// Selection invariants: every candidate has both shifts positive,
    /// scores are sorted descending, and nothing exceeds top_k.
    #[test]
    fn selection_invariants((df, df_c, n) in df_tables(), top_k in 1usize..50) {
        let out = select_facet_terms(
            SelectionInputs { df: &df, df_c: &df_c, n_docs: n },
            SelectionStatistic::LogLikelihood,
            top_k,
            1,
        );
        prop_assert!(out.len() <= top_k);
        for w in out.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for c in &out {
            prop_assert!(c.shift_f > 0);
            prop_assert!(c.shift_r > 0);
            prop_assert_eq!(c.df, df[c.term.index()]);
            prop_assert_eq!(c.df_c, df_c[c.term.index()]);
            prop_assert!(c.score >= 0.0);
        }
    }

    /// A term with no frequency gain is never selected.
    #[test]
    fn unchanged_terms_never_selected((df, _, n) in df_tables()) {
        let out = select_facet_terms(
            SelectionInputs { df: &df, df_c: &df, n_docs: n },
            SelectionStatistic::LogLikelihood,
            100,
            1,
        );
        prop_assert!(out.is_empty(), "no term changed, none should be selected");
    }

    /// The subsumption forest is acyclic and parents always satisfy the
    /// generality requirement.
    #[test]
    fn subsumption_forest_acyclic(
        docs in proptest::collection::vec(
            proptest::collection::btree_set(0u32..20, 0..8),
            1..60,
        )
    ) {
        let doc_terms: Vec<Vec<TermId>> = docs
            .iter()
            .map(|s| s.iter().map(|&t| TermId(t)).collect())
            .collect();
        let terms: Vec<TermId> = (0..20).map(TermId).collect();
        let params = SubsumptionParams::default();
        let forest = build_subsumption_forest(&terms, &doc_terms, params);

        // df per term for the generality check.
        let mut df = [0u64; 20];
        for d in &doc_terms {
            for t in d {
                df[t.index()] += 1;
            }
        }
        for i in 0..forest.terms.len() {
            // Acyclicity: walking up terminates within n steps.
            let mut steps = 0;
            let mut cur = forest.parent[i];
            while let Some(p) = cur {
                steps += 1;
                prop_assert!(steps <= forest.terms.len(), "cycle detected");
                cur = forest.parent[p];
            }
            // Generality: parent df ≥ ratio × child df.
            if let Some(p) = forest.parent[i] {
                let child_df = df[forest.terms[i].index()];
                let parent_df = df[forest.terms[p].index()];
                prop_assert!(
                    parent_df as f64 >= params.min_generality_ratio * child_df as f64
                );
            }
        }
    }

    /// FacetForest materialization preserves the term count and depth
    /// relations of the subsumption forest.
    #[test]
    fn forest_materialization_preserves_terms(
        docs in proptest::collection::vec(
            proptest::collection::btree_set(0u32..12, 1..6),
            1..40,
        )
    ) {
        let doc_terms: Vec<Vec<TermId>> = docs
            .iter()
            .map(|s| s.iter().map(|&t| TermId(t)).collect())
            .collect();
        let mut vocab = Vocabulary::new();
        for i in 0..12 {
            vocab.intern(&format!("term{i}"));
        }
        let terms: Vec<TermId> = (0..12).map(TermId).collect();
        let sub = build_subsumption_forest(&terms, &doc_terms, SubsumptionParams::default());
        let forest = FacetForest::from_subsumption(&sub, &vocab.freeze(), |_| 1);
        prop_assert_eq!(forest.total_terms(), 12);
        // Every edge in the materialized forest corresponds to a parent
        // link in the subsumption structure.
        for (parent, child) in forest.edges() {
            let ci = (0..12).find(|&i| vocab.term(sub.terms[i]) == child).unwrap();
            let pi = sub.parent[ci].expect("child has a parent");
            prop_assert_eq!(vocab.term(sub.terms[pi]), parent.as_str());
        }
    }
}
