#![allow(clippy::unwrap_used)]

//! Property-based tests for the statistics substrate.

use facet_stats::{
    chi_square_df, is_candidate, log_likelihood_ratio, rank_bin, rank_bins, ranks_by_frequency,
    shift_f, shift_r,
};
use proptest::prelude::*;

proptest! {
    /// The log-likelihood ratio is non-negative and zero iff df == df_c.
    #[test]
    fn llr_nonnegative(df in 0u64..500, df_c in 0u64..500) {
        let n = 500;
        let s = log_likelihood_ratio(df, df_c, n);
        prop_assert!(s >= 0.0);
        if df == df_c {
            prop_assert!(s.abs() < 1e-9);
        }
    }

    /// The statistic is symmetric in its two frequencies.
    #[test]
    fn llr_symmetric(df in 0u64..300, df_c in 0u64..300) {
        let n = 300;
        let a = log_likelihood_ratio(df, df_c, n);
        let b = log_likelihood_ratio(df_c, df, n);
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// Growing the frequency gap (same direction) never shrinks the
    /// statistic.
    #[test]
    fn llr_monotone_in_gap(df in 0u64..100, gap in 0u64..100, extra in 0u64..100) {
        let n = 400;
        let small = log_likelihood_ratio(df, df + gap, n);
        let large = log_likelihood_ratio(df, df + gap + extra, n);
        prop_assert!(large + 1e-9 >= small, "{large} < {small}");
    }

    /// Chi-square is non-negative and finite on valid inputs.
    #[test]
    fn chi_square_sane(df in 0u64..200, df_c in 0u64..200) {
        let s = chi_square_df(df, df_c, 200);
        prop_assert!(s.is_finite());
        prop_assert!(s >= 0.0);
    }

    /// Rank bins grow monotonically with rank.
    #[test]
    fn rank_bin_monotone(rank in 1u64..1_000_000) {
        prop_assert!(rank_bin(rank + 1) >= rank_bin(rank));
        // And the bin is exactly ⌈log2 rank⌉.
        let expected = (rank as f64).log2().ceil() as u32;
        prop_assert_eq!(rank_bin(rank), expected);
    }

    /// Competition ranking: higher frequency → better (smaller) rank;
    /// equal frequency → equal rank; ranks start at 1.
    #[test]
    fn ranking_respects_frequencies(freqs in proptest::collection::vec(0u64..50, 1..60)) {
        let ranks = ranks_by_frequency(&freqs);
        prop_assert_eq!(ranks.len(), freqs.len());
        for i in 0..freqs.len() {
            prop_assert!(ranks[i] >= 1);
            for j in 0..freqs.len() {
                if freqs[i] > freqs[j] && freqs[j] > 0 {
                    prop_assert!(ranks[i] < ranks[j]);
                }
                if freqs[i] == freqs[j] && freqs[i] > 0 {
                    prop_assert_eq!(ranks[i], ranks[j]);
                }
            }
        }
    }

    /// Zero-frequency terms all share the worst rank.
    #[test]
    fn absent_terms_share_worst_rank(freqs in proptest::collection::vec(0u64..10, 2..40)) {
        let ranks = ranks_by_frequency(&freqs);
        let nonzero = freqs.iter().filter(|&&f| f > 0).count() as u64;
        for (i, &f) in freqs.iter().enumerate() {
            if f == 0 {
                prop_assert_eq!(ranks[i], nonzero + 1);
            } else {
                prop_assert!(ranks[i] <= nonzero);
            }
        }
    }

    /// The candidate predicate equals the conjunction of the two shifts.
    #[test]
    fn candidate_is_conjunction(df in 0u64..100, df_c in 0u64..100, bd in 0u32..20, bc in 0u32..20) {
        let expected = shift_f(df, df_c) > 0 && shift_r(bd, bc) > 0;
        prop_assert_eq!(is_candidate(df, df_c, bd, bc), expected);
    }

    /// rank_bins composes ranks_by_frequency with rank_bin.
    #[test]
    fn bins_compose(freqs in proptest::collection::vec(0u64..30, 1..40)) {
        let bins = rank_bins(&freqs);
        let ranks = ranks_by_frequency(&freqs);
        for (b, r) in bins.iter().zip(&ranks) {
            prop_assert_eq!(*b, rank_bin(*r));
        }
    }
}
