//! Pearson's chi-square statistic for a 2×2 contingency table.
//!
//! The paper explicitly *rejects* chi-square for facet-term selection:
//! "due to the power-law distribution of the term frequencies, many of the
//! underlying assumptions for the chi-square test do not hold for text
//! frequency analysis" (Section IV-C, citing Dunning 1993). We implement it
//! anyway so the ablation benchmark can demonstrate the difference between
//! chi-square and log-likelihood ranking on Zipfian data.

/// Pearson chi-square statistic for the 2×2 table
///
/// ```text
///              in D     not in D
/// original      a          b
/// contextual    c          d
/// ```
///
/// Returns 0 when any marginal is zero (degenerate table).
pub fn chi_square_2x2(a: u64, b: u64, c: u64, d: u64) -> f64 {
    let (a, b, c, d) = (a as f64, b as f64, c as f64, d as f64);
    let n = a + b + c + d;
    let row1 = a + b;
    let row2 = c + d;
    let col1 = a + c;
    let col2 = b + d;
    if row1 == 0.0 || row2 == 0.0 || col1 == 0.0 || col2 == 0.0 {
        return 0.0;
    }
    let num = n * (a * d - b * c).powi(2);
    let den = row1 * row2 * col1 * col2;
    num / den
}

/// Convenience wrapper matching [`crate::loglik::log_likelihood_ratio`]'s
/// signature: document frequencies `df` (original) and `df_c`
/// (contextualized) out of `n` documents each.
pub fn chi_square_df(df: u64, df_c: u64, n: u64) -> f64 {
    assert!(df <= n && df_c <= n, "df out of range");
    chi_square_2x2(df, n - df, df_c, n - df_c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_for_identical_rows() {
        assert_eq!(chi_square_2x2(10, 90, 10, 90), 0.0);
    }

    #[test]
    fn degenerate_tables() {
        assert_eq!(chi_square_2x2(0, 0, 5, 5), 0.0);
        assert_eq!(chi_square_2x2(0, 5, 0, 5), 0.0);
    }

    #[test]
    fn textbook_value() {
        // Table: [[10, 20], [30, 40]] → chi2 = 100*(400-600)^2/(30*70*40*60)
        let chi = chi_square_2x2(10, 20, 30, 40);
        let expected =
            100.0 * (10.0 * 40.0 - 20.0 * 30.0_f64).powi(2) / (30.0 * 70.0 * 40.0 * 60.0);
        assert!((chi - expected).abs() < 1e-12);
    }

    #[test]
    fn grows_with_association() {
        let weak = chi_square_df(10, 15, 1000);
        let strong = chi_square_df(10, 100, 1000);
        assert!(strong > weak);
    }

    #[test]
    fn chi_square_and_loglik_rank_terms_differently() {
        // The paper's reason for preferring the log-likelihood statistic is
        // that chi-square misbehaves in the rare-event (Zipf tail) regime.
        // The observable consequence for facet selection is that the two
        // statistics *order candidate terms differently*. Verify that a
        // crossing pair exists on a realistic grid of (df, df_c) counts.
        use crate::loglik::log_likelihood_ratio;
        let n = 10_000u64;
        // Term A: rarer in D with a large relative gain; term B: more
        // common with a smaller relative gain. Chi-square prefers A while
        // log-likelihood prefers B.
        let (a_df, a_dfc) = (27u64, 884u64);
        let (b_df, b_dfc) = (12u64, 833u64);
        let chi_a = chi_square_df(a_df, a_dfc, n);
        let chi_b = chi_square_df(b_df, b_dfc, n);
        let llr_a = log_likelihood_ratio(a_df, a_dfc, n);
        let llr_b = log_likelihood_ratio(b_df, b_dfc, n);
        assert!(chi_a > chi_b, "chi-square: {chi_a} vs {chi_b}");
        assert!(llr_a < llr_b, "log-likelihood: {llr_a} vs {llr_b}");
    }
}
