//! The two shift functions of Section IV-C.
//!
//! A term becomes a candidate facet term only if **both** shifts are
//! positive:
//!
//! * `Shift_f(t) = df_C(t) − df(t)` — the raw document-frequency increase
//!   after contextualization. Positive means the term occurs in more
//!   documents once context terms are added. (The paper notes this alone
//!   favours already-frequent terms, due to Zipf.)
//! * `Shift_r(t) = B_D(t) − B_C(t)` — the rank-bin improvement, with
//!   `B(t) = ⌈log2 Rank(t)⌉`. Positive means the term moved to a *better*
//!   (lower) bin in the contextualized database.

use crate::binning::RankBin;

/// `Shift_f(t) = df_C(t) − df(t)`, as a signed value.
#[inline]
pub fn shift_f(df: u64, df_c: u64) -> i64 {
    df_c as i64 - df as i64
}

/// `Shift_r(t) = B_D(t) − B_C(t)`, as a signed value. Positive when the
/// term's rank bin improved (smaller bin) in the contextualized database.
#[inline]
pub fn shift_r(bin_original: RankBin, bin_contextual: RankBin) -> i64 {
    bin_original as i64 - bin_contextual as i64
}

/// The candidate predicate of the paper: both shifts strictly positive.
#[inline]
pub fn is_candidate(df: u64, df_c: u64, bin_original: RankBin, bin_contextual: RankBin) -> bool {
    shift_f(df, df_c) > 0 && shift_r(bin_original, bin_contextual) > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::rank_bins;

    #[test]
    fn shift_f_signs() {
        assert_eq!(shift_f(3, 10), 7);
        assert_eq!(shift_f(10, 3), -7);
        assert_eq!(shift_f(5, 5), 0);
    }

    #[test]
    fn shift_r_signs() {
        assert_eq!(shift_r(6, 2), 4); // improved by 4 bins
        assert_eq!(shift_r(2, 6), -4);
        assert_eq!(shift_r(3, 3), 0);
    }

    #[test]
    fn candidate_requires_both() {
        assert!(is_candidate(1, 10, 8, 3));
        assert!(!is_candidate(10, 10, 8, 3)); // no frequency gain
        assert!(!is_candidate(1, 10, 3, 3)); // no rank-bin gain
        assert!(!is_candidate(10, 1, 3, 8)); // both negative
    }

    /// End-to-end miniature of the paper's scenario: a facet term that is
    /// rare in D but frequent in C(D) passes; a background word that is
    /// frequent in both does not.
    #[test]
    fn facet_term_scenario() {
        // Terms: 0="france" (facet, rare in D), 1="year" (background).
        let df_d = [2u64, 900];
        let df_c = [700u64, 905];
        let bins_d = rank_bins(&df_d);
        let bins_c = rank_bins(&df_c);
        // "france": df 2→700, rank 2→? With only two terms, france moves
        // from rank 2 (bin 1) to rank 2 in C... use a richer table instead.
        let d = [2u64, 900, 850, 800, 750, 700, 650];
        let c = [880u64, 905, 855, 805, 755, 705, 655];
        let bd = rank_bins(&d);
        let bc = rank_bins(&c);
        // "france" (idx 0) jumps from worst rank to rank 2.
        assert!(is_candidate(d[0], c[0], bd[0], bc[0]));
        // "year" (idx 1) stays rank 1 → not a candidate (no bin change).
        assert!(!is_candidate(d[1], c[1], bd[1], bc[1]));
        let _ = (df_d, df_c, bins_d, bins_c);
    }
}
