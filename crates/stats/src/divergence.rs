//! Distributional divergence measures.
//!
//! The paper's related work (Section VI) frames the whole approach as
//! "distributional analysis of two collections", citing Lee's skew
//! divergence \[33\] as the conceptually closest term-similarity measure
//! ("fruit can approximate apple but not vice versa" — the same asymmetry
//! the facet-term shift exploits). This module provides the measures for
//! the comparison study: KL divergence, Lee's α-skew divergence, and a
//! whole-distribution divergence between the original and contextualized
//! term distributions.

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats. `p` and `q` must be
/// same-length probability vectors; the convention `0·log(0/q) = 0` is
/// used, and a zero in `q` against nonzero `p[i]` yields infinity.
///
/// # Panics
/// Panics if the lengths differ.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths differ");
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi <= 0.0 {
            continue;
        }
        if qi <= 0.0 {
            return f64::INFINITY;
        }
        d += pi * (pi / qi).ln();
    }
    d.max(0.0)
}

/// Lee's α-skew divergence: `s_α(q, p) = KL(p ‖ α·q + (1−α)·p)`.
/// Unlike KL it is always finite for α < 1, and it is *asymmetric* in
/// exactly the way term generalization is: a general distribution can
/// approximate a specific one better than vice versa.
pub fn skew_divergence(p: &[f64], q: &[f64], alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "alpha out of range");
    assert_eq!(p.len(), q.len(), "distribution lengths differ");
    let mixed: Vec<f64> = p
        .iter()
        .zip(q)
        .map(|(&pi, &qi)| alpha * qi + (1.0 - alpha) * pi)
        .collect();
    kl_divergence(p, &mixed)
}

/// Normalize a frequency table into a probability distribution. Returns
/// `None` when the total mass is zero.
pub fn normalize(freqs: &[u64]) -> Option<Vec<f64>> {
    let total: u64 = freqs.iter().sum();
    if total == 0 {
        return None;
    }
    Some(freqs.iter().map(|&f| f as f64 / total as f64).collect())
}

/// Skew divergence between two term-frequency tables (e.g. the original
/// database `D` and the contextualized database `C(D)`), with α = 0.99 as
/// in Lee's experiments. Returns `None` if either table is empty.
pub fn corpus_skew_divergence(df: &[u64], df_c: &[u64]) -> Option<f64> {
    let len = df.len().max(df_c.len());
    let mut a = df.to_vec();
    a.resize(len, 0);
    let mut b = df_c.to_vec();
    b.resize(len, 0);
    let p = normalize(&a)?;
    let q = normalize(&b)?;
    Some(skew_divergence(&p, &q, 0.99))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_zero_iff_identical() {
        let p = vec![0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
        let q = vec![0.5, 0.25, 0.25];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn kl_infinite_on_missing_support() {
        let p = vec![0.5, 0.5];
        let q = vec![1.0, 0.0];
        assert!(kl_divergence(&p, &q).is_infinite());
    }

    #[test]
    fn skew_finite_where_kl_is_not() {
        let p = vec![0.5, 0.5];
        let q = vec![1.0, 0.0];
        let s = skew_divergence(&p, &q, 0.99);
        assert!(s.is_finite());
        assert!(s > 0.0);
    }

    #[test]
    fn skew_is_asymmetric() {
        // q (general) covers everything; p (specific) concentrates.
        let general = vec![0.25, 0.25, 0.25, 0.25];
        let specific = vec![0.85, 0.05, 0.05, 0.05];
        let general_approximates_specific = skew_divergence(&specific, &general, 0.99);
        let specific_approximates_general = skew_divergence(&general, &specific, 0.99);
        assert!(
            general_approximates_specific < specific_approximates_general,
            "the general distribution should approximate the specific one better \
             ({general_approximates_specific} vs {specific_approximates_general})"
        );
    }

    #[test]
    fn normalize_and_corpus_divergence() {
        assert_eq!(normalize(&[0, 0]), None);
        assert_eq!(normalize(&[1, 3]), Some(vec![0.25, 0.75]));
        let d = corpus_skew_divergence(&[10, 0, 5], &[12, 9, 6]).unwrap();
        assert!(d > 0.0 && d.is_finite());
        assert!(corpus_skew_divergence(&[], &[]).is_none());
    }

    #[test]
    fn expansion_increases_divergence_with_new_terms() {
        // Adding brand-new frequent terms (facet terms!) moves the
        // distribution more than uniform growth does.
        let df = vec![100, 50, 25, 0, 0];
        let uniform_growth = vec![110, 55, 27, 0, 0];
        let facet_growth = vec![100, 50, 25, 60, 40];
        let d_uniform = corpus_skew_divergence(&df, &uniform_growth).unwrap();
        let d_facets = corpus_skew_divergence(&df, &facet_growth).unwrap();
        assert!(d_facets > d_uniform);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = kl_divergence(&[1.0], &[0.5, 0.5]);
    }
}
