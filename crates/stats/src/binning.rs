//! Frequency ranking and logarithmic rank binning.
//!
//! Section IV-C of the paper defines the rank-based shift through a binning
//! function `B(t) = ⌈log2(Rank(t))⌉`, where `Rank(t)` is the rank of term
//! `t` in a database ordered by decreasing frequency (rank 1 = most
//! frequent). Binning absorbs the rank jitter among terms of similar
//! frequency; only moves across bins count as rank shifts.

/// A logarithmic rank bin: `B(t) = ⌈log2(rank)⌉` with rank ≥ 1.
pub type RankBin = u32;

/// Compute `⌈log2(rank)⌉` for a 1-based rank.
///
/// ```
/// use facet_stats::rank_bin;
/// assert_eq!(rank_bin(1), 0);
/// assert_eq!(rank_bin(8), 3);
/// assert_eq!(rank_bin(9), 4);
/// ```
///
/// Rank 1 → bin 0, rank 2 → 1, ranks 3–4 → 2, ranks 5–8 → 3, …
///
/// # Panics
/// Panics if `rank == 0` (ranks are 1-based, as in the paper).
pub fn rank_bin(rank: u64) -> RankBin {
    assert!(rank > 0, "ranks are 1-based");
    // ceil(log2(r)) == bits needed to represent r-1 when r > 1.
    if rank == 1 {
        0
    } else {
        (u64::BITS - (rank - 1).leading_zeros()) as RankBin
    }
}

/// Given a frequency table `freqs[i] = frequency of term i`, return the
/// 1-based rank of every term when ordered by decreasing frequency.
///
/// Ties share the same rank (standard competition ranking, "1224"): all
/// terms with equal frequency get the rank of the first of their group.
/// Terms with zero frequency receive the worst possible rank
/// (`number of nonzero terms + 1`), reflecting "not present in the
/// database".
pub fn ranks_by_frequency(freqs: &[u64]) -> Vec<u64> {
    let mut order: Vec<usize> = (0..freqs.len()).collect();
    order.sort_by(|&a, &b| freqs[b].cmp(&freqs[a]).then(a.cmp(&b)));
    let mut ranks = vec![0u64; freqs.len()];
    let nonzero = freqs.iter().filter(|&&f| f > 0).count() as u64;
    let absent_rank = nonzero + 1;
    let mut current_rank = 0u64;
    let mut prev_freq: Option<u64> = None;
    for (pos, &idx) in order.iter().enumerate() {
        let f = freqs[idx];
        if f == 0 {
            ranks[idx] = absent_rank;
            continue;
        }
        if prev_freq != Some(f) {
            current_rank = pos as u64 + 1;
            prev_freq = Some(f);
        }
        ranks[idx] = current_rank;
    }
    ranks
}

/// Compute the rank bin of every term in a frequency table:
/// `bins[i] = ⌈log2(Rank(term i))⌉`.
pub fn rank_bins(freqs: &[u64]) -> Vec<RankBin> {
    ranks_by_frequency(freqs)
        .into_iter()
        .map(rank_bin)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_boundaries() {
        assert_eq!(rank_bin(1), 0);
        assert_eq!(rank_bin(2), 1);
        assert_eq!(rank_bin(3), 2);
        assert_eq!(rank_bin(4), 2);
        assert_eq!(rank_bin(5), 3);
        assert_eq!(rank_bin(8), 3);
        assert_eq!(rank_bin(9), 4);
        assert_eq!(rank_bin(1024), 10);
        assert_eq!(rank_bin(1025), 11);
    }

    #[test]
    #[should_panic]
    fn rank_zero_panics() {
        let _ = rank_bin(0);
    }

    #[test]
    fn ranks_basic() {
        // freqs: t0=5, t1=9, t2=1 → ranks: t1=1, t0=2, t2=3
        assert_eq!(ranks_by_frequency(&[5, 9, 1]), vec![2, 1, 3]);
    }

    #[test]
    fn ranks_with_ties() {
        // freqs: 7, 7, 3, 3, 3, 1 → ranks 1,1,3,3,3,6 (competition ranking)
        assert_eq!(
            ranks_by_frequency(&[7, 7, 3, 3, 3, 1]),
            vec![1, 1, 3, 3, 3, 6]
        );
    }

    #[test]
    fn zero_frequency_gets_worst_rank() {
        // Two nonzero terms → absent rank is 3.
        assert_eq!(ranks_by_frequency(&[4, 0, 2]), vec![1, 3, 2]);
    }

    #[test]
    fn all_zero() {
        assert_eq!(ranks_by_frequency(&[0, 0]), vec![1, 1]);
    }

    #[test]
    fn empty_table() {
        assert!(ranks_by_frequency(&[]).is_empty());
        assert!(rank_bins(&[]).is_empty());
    }

    #[test]
    fn bins_composed() {
        // ranks 1,3,2 → bins 0,2,1
        assert_eq!(rank_bins(&[9, 1, 5]), vec![0, 2, 1]);
    }
}
