#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # facet-stats
//!
//! Statistical machinery for the comparative term-frequency analysis of
//! Section IV-C of the paper:
//!
//! * [`loglik`] — Dunning's log-likelihood statistic for the binomial case,
//!   exactly as defined in the paper (and in Dunning 1993),
//! * [`chisq`] — the chi-square statistic, implemented for the ablation
//!   study (the paper argues it is *unsuitable* for power-law term
//!   frequencies; we reproduce that comparison),
//! * [`binning`] — the rank-binning function `B(t) = ⌈log2(Rank(t))⌉` and
//!   rank computation over frequency tables,
//! * [`shift`] — the frequency- and rank-based shift functions `Shift_f`
//!   and `Shift_r`.

pub mod binning;
pub mod chisq;
pub mod divergence;
pub mod loglik;
pub mod shift;

pub use binning::{rank_bin, rank_bins, ranks_by_frequency, RankBin};
pub use chisq::{chi_square_2x2, chi_square_df};
pub use divergence::{corpus_skew_divergence, kl_divergence, normalize, skew_divergence};
pub use loglik::{binomial_log_likelihood, log_likelihood_ratio};
pub use shift::{is_candidate, shift_f, shift_r};
