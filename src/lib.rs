#![warn(missing_docs)]

//! # facet-hierarchies
//!
//! Umbrella crate for the reproduction of *"Automatic Extraction of Useful
//! Facet Hierarchies from Text Databases"* (Dakka & Ipeirotis, ICDE 2008).
//!
//! Re-exports the workspace crates under stable module names so downstream
//! users (and the examples in `examples/`) can depend on a single crate.

pub use facet_core as core;
pub use facet_corpus as corpus;
pub use facet_eval as eval;
pub use facet_jsonio as jsonio;
pub use facet_knowledge as knowledge;
pub use facet_ner as ner;
pub use facet_obs as obs;
pub use facet_resources as resources;
pub use facet_stats as stats;
pub use facet_store as store;
pub use facet_termx as termx;
pub use facet_textkit as textkit;
pub use facet_websearch as websearch;
pub use facet_wikipedia as wikipedia;
pub use facet_wordnet as wordnet;
