//! Quickstart: extract facet hierarchies from a (synthetic) news archive
//! in a dozen lines of code.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The pipeline is the paper's: identify important terms per document,
//! expand them with context from external resources, select the terms
//! whose document frequency and rank both improve, and organize the
//! selected terms into browsable hierarchies.

use facet_hierarchies::core::{FacetPipeline, PipelineOptions};
use facet_hierarchies::corpus::{DatasetRecipe, RecipeKind};
use facet_hierarchies::ner::NerTagger;
use facet_hierarchies::resources::{
    CachedResource, ContextResource, WikiGraphResource, WordNetHypernymsResource,
};
use facet_hierarchies::termx::{NamedEntityExtractor, TermExtractor, YahooTermExtractor};
use facet_hierarchies::textkit::Vocabulary;
use facet_hierarchies::wikipedia::{build_wikipedia, WikipediaConfig, WikipediaGraph};
use facet_hierarchies::wordnet::build_wordnet;

fn main() {
    // 1. A corpus. Here: a scaled-down single day of synthetic news.
    //    (With real data you would construct `Document`s from your own
    //    text and build a `TextDatabase` directly.)
    let recipe = DatasetRecipe::scaled(RecipeKind::Snyt, 0.3);
    let world = recipe.build_world();
    let mut vocab = Vocabulary::new();
    let corpus = recipe.build_corpus(&world, &mut vocab);
    println!("corpus: {} documents", corpus.db.len());

    // 2. External resources (all local in this reproduction).
    let wiki = build_wikipedia(&world, &WikipediaConfig::default());
    let wordnet = build_wordnet(&world);
    let graph = WikipediaGraph::new(&wiki.wiki, &wiki.redirects);
    let graph_res = CachedResource::new(WikiGraphResource::new(&graph));
    let wn_res = CachedResource::new(WordNetHypernymsResource::new(&wordnet));

    // 3. Important-term extractors.
    let tagger = NerTagger::from_world(&world);
    let ne = NamedEntityExtractor::new(tagger);
    let yahoo = YahooTermExtractor::fit(&corpus.db, &vocab);

    // 4. Run the pipeline.
    let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
    let resources: Vec<&dyn ContextResource> = vec![&graph_res, &wn_res];
    let pipeline = FacetPipeline::new(
        extractors,
        resources,
        PipelineOptions {
            top_k: 400,
            ..Default::default()
        },
    );
    let extraction = pipeline.run(&corpus.db, &mut vocab);
    println!(
        "selected {} candidate facet terms",
        extraction.candidates.len()
    );
    println!("top 15 by log-likelihood:");
    for c in extraction.candidates.iter().take(15) {
        println!(
            "  {:<28} df={:<4} df_C={:<5} -logλ={:.1}",
            vocab.term(c.term),
            c.df,
            c.df_c,
            c.score
        );
    }

    // 5. Build the hierarchies and show the top facets.
    let forest = pipeline.build_hierarchies(&extraction, &vocab);
    println!("\nfacet hierarchy (top 3 facets, 5 children each):");
    for tree in forest.trees.iter().take(3) {
        let mini =
            facet_hierarchies::core::FacetForest::new(vec![tree.clone()], forest.vocab().clone());
        print!("{}", mini.render(5));
    }
}
