//! Query-time facets through the serving tier: build the index ONCE,
//! answer every browse query from frozen per-shard snapshots.
//!
//! ```sh
//! cargo run --release --example query_time_facets
//! cargo run --release --example query_time_facets -- --obs obs.json --trace trace.json
//! ```
//!
//! `--obs <path>` writes the recorder's metric snapshot (stage timings,
//! `serve.{hit,miss,fanout}` counters, latency histograms) as JSON;
//! `--trace <path>` writes a Chrome trace-event file of the indexing run
//! (see DESIGN.md section 15).
//!
//! Section V-D of the paper notes that with term and context extraction
//! performed offline, "we can generate facet hierarchies over the complete
//! database and dynamically over a set of lengthy query results". Earlier
//! revisions of this example re-ran term selection and forest
//! construction on every query — interactive latency paid the full
//! pipeline each time. The serving tier (`core::serve`, DESIGN.md
//! section 17) fixes that: `FacetServer` publishes frozen per-shard
//! snapshots, answers each browse by deterministic fan-out + merge-at-
//! read, and a query-signature cache serves repeated queries with zero
//! re-selection until an append bumps the generation.

use facet_hierarchies::core::{fanout_browse, FacetServer, PipelineOptions, ShardedFacetIndex};
use facet_hierarchies::corpus::{DatasetRecipe, RecipeKind};
use facet_hierarchies::ner::NerTagger;
use facet_hierarchies::obs::{Recorder, Tracer, TracerConfig, WallTraceClock};
use facet_hierarchies::resources::{CachedResource, ContextResource, WikiGraphResource};
use facet_hierarchies::termx::{NamedEntityExtractor, TermExtractor};
use facet_hierarchies::textkit::Vocabulary;
use facet_hierarchies::wikipedia::{build_wikipedia, WikipediaConfig, WikipediaGraph};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut obs_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--obs" => {
                obs_out = argv.get(i + 1).cloned();
                i += 2;
            }
            "--trace" => {
                trace_out = argv.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other} (supported: --obs <path>, --trace <path>)");
                std::process::exit(2);
            }
        }
    }
    // Observability is opt-in: without flags the recorder is disabled
    // and every record call below is a no-op. The trace clock is the
    // wall clock here — this example measures real interactive latency,
    // so its trace is *not* byte-reproducible (unlike the seeded
    // `instrumented_run --trace` scenario).
    let recorder = match (&obs_out, &trace_out) {
        (None, None) => Recorder::disabled(),
        (_, None) => Recorder::enabled(),
        (_, Some(_)) => Recorder::traced(Tracer::with_clock(
            TracerConfig::default(),
            std::sync::Arc::new(WallTraceClock::new()),
        )),
    };

    // Full archive, split so one batch can arrive mid-session below.
    let recipe = DatasetRecipe::scaled(RecipeKind::Snyt, 0.5);
    let world = recipe.build_world();
    let mut vocab = Vocabulary::new();
    let corpus = recipe.build_corpus(&world, &mut vocab);
    let docs = corpus.db.docs().to_vec();
    let late = (docs.len() / 10).max(1);
    let (initial, late_batch) = docs.split_at(docs.len() - late);

    // Index ONCE (the expensive offline half), then serve.
    let wiki = build_wikipedia(&world, &WikipediaConfig::default());
    let graph = WikipediaGraph::new(&wiki.wiki, &wiki.redirects);
    let graph_res = CachedResource::new(WikiGraphResource::new(&graph));
    let tagger = NerTagger::from_world(&world);
    let ne = NamedEntityExtractor::new(tagger);
    let extractors: Vec<&dyn TermExtractor> = vec![&ne];
    let resources: Vec<&dyn ContextResource> = vec![&graph_res];
    let mut index = ShardedFacetIndex::new(
        4,
        extractors,
        resources,
        PipelineOptions {
            top_k: 150,
            min_df_c: 2,
            ..Default::default()
        },
    )
    .with_recorder(recorder.clone());
    {
        let span = recorder.span("build_index");
        span.attr("docs", initial.len() as u64);
        index.append(initial.to_vec()).expect("index the archive");
    }
    let mut server = FacetServer::new(index);
    let handle = server.handle();

    let snapshot = server.snapshot();
    let forest = snapshot.merged().forest();
    println!(
        "serving generation {}: {} docs, {} facet terms across {} facets",
        snapshot.generation(),
        snapshot.n_docs(),
        forest.total_terms(),
        forest.trees.len()
    );
    print!("{}", forest.render(4));

    // The user drills into the most prominent facets. Each query is
    // answered by fan-out browse over the frozen shard views; asking it
    // again hits the signature cache — zero re-selection, and the
    // cached answer is byte-identical to a fresh one.
    let queries: Vec<String> = forest
        .trees
        .iter()
        .take(3)
        .map(|t| forest.label(&t.root).to_string())
        .collect();
    for label in &queries {
        let first = handle.browse(&[label.as_str()]);
        let again = handle.browse(&[label.as_str()]);
        let fresh = fanout_browse(&handle.snapshot(), &[label.as_str()]);
        assert_eq!(
            first.canonical(),
            fresh.canonical(),
            "cached browse must be byte-identical to uncached re-selection"
        );
        println!(
            "browse {:?}: {} docs, {} refinements (repeat was a cache {})",
            label,
            first.total(),
            first.refinements.len(),
            if std::sync::Arc::ptr_eq(&first, &again) {
                "hit"
            } else {
                "miss"
            }
        );
        for (child, count) in first.refinements.iter().take(4) {
            println!("  {child} ({count})");
        }
    }

    // A late batch arrives: the append bumps the generation, republishes
    // only the shards that received documents, and invalidates the
    // cache. The same queries now re-select against the new snapshot.
    let stats = server.append(late_batch.to_vec()).expect("late batch");
    println!(
        "appended {} late docs (generation {} -> {})",
        late_batch.len(),
        snapshot.generation(),
        server.snapshot().generation()
    );
    drop(stats);
    for label in &queries {
        let result = handle.browse(&[label.as_str()]);
        println!(
            "browse {:?} @ generation {}: {} docs",
            label,
            result.generation,
            result.total()
        );
    }
    let cache = handle.cache_stats();
    println!(
        "cache: {} hits, {} misses, {} invalidated by the append",
        cache.hits, cache.misses, cache.invalidations
    );

    if let Some(path) = obs_out {
        let report = recorder.snapshot();
        let json =
            facet_hierarchies::jsonio::to_json_string_pretty(&report).expect("serialize report");
        std::fs::write(&path, json + "\n").expect("write obs report");
        println!("wrote {path} (metric snapshot)");
    }
    if let Some(path) = trace_out {
        let tracer = recorder.tracer().expect("traced recorder");
        std::fs::write(&path, tracer.chrome_trace_json()).expect("write trace");
        println!("wrote {path} — open in chrome://tracing or https://ui.perfetto.dev");
    }
}
