//! Query-time facets: build facet hierarchies over *search results*, not
//! just over the whole database.
//!
//! ```sh
//! cargo run --release --example query_time_facets
//! cargo run --release --example query_time_facets -- --obs obs.json --trace trace.json
//! ```
//!
//! `--obs <path>` writes the recorder's metric snapshot (stage timings,
//! counters, histograms) as JSON; `--trace <path>` writes a Chrome
//! trace-event file of the query-time pipeline run — the spans show how
//! much of the interactive latency goes to extraction, expansion,
//! selection, and hierarchy construction (see DESIGN.md section 15).
//!
//! Section V-D of the paper notes that with term and context extraction
//! performed offline, "we can generate facet hierarchies over the complete
//! database and dynamically over a set of lengthy query results". This
//! example does the dynamic case: run a keyword query, take the matching
//! subset of documents, and compute the facets of the result set alone —
//! the structure a search UI would show beside the result list.

use facet_hierarchies::core::{FacetPipeline, PipelineOptions};
use facet_hierarchies::corpus::db::TermingOptions;
use facet_hierarchies::corpus::{DatasetRecipe, Document, RecipeKind, TextDatabase};
use facet_hierarchies::ner::NerTagger;
use facet_hierarchies::obs::{Recorder, Tracer, TracerConfig, WallTraceClock};
use facet_hierarchies::resources::{CachedResource, ContextResource, WikiGraphResource};
use facet_hierarchies::termx::{NamedEntityExtractor, TermExtractor};
use facet_hierarchies::textkit::Vocabulary;
use facet_hierarchies::websearch::{SearchEngine, WebDocId, WebPage};
use facet_hierarchies::wikipedia::{build_wikipedia, WikipediaConfig, WikipediaGraph};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut obs_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--obs" => {
                obs_out = argv.get(i + 1).cloned();
                i += 2;
            }
            "--trace" => {
                trace_out = argv.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other} (supported: --obs <path>, --trace <path>)");
                std::process::exit(2);
            }
        }
    }
    // Observability is opt-in: without flags the recorder is disabled
    // and every record call below is a no-op. The trace clock is the
    // wall clock here — this example measures real interactive latency,
    // so its trace is *not* byte-reproducible (unlike the seeded
    // `instrumented_run --trace` scenario).
    let recorder = match (&obs_out, &trace_out) {
        (None, None) => Recorder::disabled(),
        (_, None) => Recorder::enabled(),
        (_, Some(_)) => Recorder::traced(Tracer::with_clock(
            TracerConfig::default(),
            std::sync::Arc::new(WallTraceClock::new()),
        )),
    };

    // Full archive.
    let recipe = DatasetRecipe::scaled(RecipeKind::Snyt, 0.5);
    let world = recipe.build_world();
    let mut vocab = Vocabulary::new();
    let corpus = recipe.build_corpus(&world, &mut vocab);

    // A keyword index over the archive (the "search" half of the UI).
    let pages: Vec<WebPage> = corpus
        .db
        .docs()
        .iter()
        .map(|d| WebPage {
            id: WebDocId(d.id.0),
            title: d.title.clone(),
            text: d.text.clone(),
        })
        .collect();
    let search = SearchEngine::new(pages);

    // The user queries for a popular person.
    let query = world
        .entities_of_kind(facet_hierarchies::knowledge::EntityKind::Person)
        .next()
        .map(|e| e.name.clone())
        .expect("world has people");
    let hits = search.search(&query, 200);
    println!("query: {query:?} → {} results", hits.len());

    // Query-time database: the matching documents only (re-indexed).
    let result_docs: Vec<Document> = hits
        .iter()
        .enumerate()
        .map(|(i, h)| {
            let d = corpus.db.doc(facet_hierarchies::corpus::DocId(h.doc.0));
            Document {
                id: facet_hierarchies::corpus::DocId(i as u32),
                source: d.source,
                day: d.day,
                title: d.title.clone(),
                text: d.text.clone(),
            }
        })
        .collect();
    if result_docs.is_empty() {
        println!("no results; try a different query");
        return;
    }
    let result_db = TextDatabase::build(result_docs, &mut vocab, TermingOptions::default());

    // Facets of the result set.
    let wiki = build_wikipedia(&world, &WikipediaConfig::default());
    let graph = WikipediaGraph::new(&wiki.wiki, &wiki.redirects);
    let graph_res = CachedResource::new(WikiGraphResource::new(&graph));
    let tagger = NerTagger::from_world(&world);
    let ne = NamedEntityExtractor::new(tagger);
    let extractors: Vec<&dyn TermExtractor> = vec![&ne];
    let resources: Vec<&dyn ContextResource> = vec![&graph_res];
    let pipeline = FacetPipeline::new(
        extractors,
        resources,
        PipelineOptions {
            top_k: 150,
            min_df_c: 2,
            ..Default::default()
        },
    )
    .with_recorder(recorder.clone());
    let (extraction, forest) = {
        let span = recorder.span("query_facets");
        span.attr("query", query.as_str());
        span.attr("results", result_db.len() as u64);
        let extraction = pipeline.run(&result_db, &mut vocab);
        let forest = pipeline.build_hierarchies(&extraction, &vocab);
        (extraction, forest)
    };

    println!(
        "result-set facets ({} terms across {} facets):",
        forest.total_terms(),
        forest.trees.len()
    );
    print!("{}", forest.render(4));

    // The refinement counts a faceted UI renders next to each top-level
    // link. Display labels resolve through the forest's frozen interner
    // view exactly once per browse — nodes carry only symbols, so there
    // is no per-node label clone anywhere in this loop.
    let engine = facet_hierarchies::core::BrowseEngine::new(
        forest,
        extraction.contextualized.doc_terms.clone(),
    );
    println!("top-level refinements:");
    for (_, label, count) in engine.refinements(&[], None).into_iter().take(8) {
        println!("  {label} ({count})");
    }

    if let Some(path) = obs_out {
        let report = recorder.snapshot();
        let json =
            facet_hierarchies::jsonio::to_json_string_pretty(&report).expect("serialize report");
        std::fs::write(&path, json + "\n").expect("write obs report");
        println!("wrote {path} (metric snapshot)");
    }
    if let Some(path) = trace_out {
        let tracer = recorder.tracer().expect("traced recorder");
        std::fs::write(&path, tracer.chrome_trace_json()).expect("write trace");
        println!("wrote {path} — open in chrome://tracing or https://ui.perfetto.dev");
    }
}
