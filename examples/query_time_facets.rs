//! Query-time facets: build facet hierarchies over *search results*, not
//! just over the whole database.
//!
//! ```sh
//! cargo run --release --example query_time_facets
//! ```
//!
//! Section V-D of the paper notes that with term and context extraction
//! performed offline, "we can generate facet hierarchies over the complete
//! database and dynamically over a set of lengthy query results". This
//! example does the dynamic case: run a keyword query, take the matching
//! subset of documents, and compute the facets of the result set alone —
//! the structure a search UI would show beside the result list.

use facet_hierarchies::core::{FacetPipeline, PipelineOptions};
use facet_hierarchies::corpus::db::TermingOptions;
use facet_hierarchies::corpus::{DatasetRecipe, Document, RecipeKind, TextDatabase};
use facet_hierarchies::ner::NerTagger;
use facet_hierarchies::resources::{CachedResource, ContextResource, WikiGraphResource};
use facet_hierarchies::termx::{NamedEntityExtractor, TermExtractor};
use facet_hierarchies::textkit::Vocabulary;
use facet_hierarchies::websearch::{SearchEngine, WebDocId, WebPage};
use facet_hierarchies::wikipedia::{build_wikipedia, WikipediaConfig, WikipediaGraph};

fn main() {
    // Full archive.
    let recipe = DatasetRecipe::scaled(RecipeKind::Snyt, 0.5);
    let world = recipe.build_world();
    let mut vocab = Vocabulary::new();
    let corpus = recipe.build_corpus(&world, &mut vocab);

    // A keyword index over the archive (the "search" half of the UI).
    let pages: Vec<WebPage> = corpus
        .db
        .docs()
        .iter()
        .map(|d| WebPage {
            id: WebDocId(d.id.0),
            title: d.title.clone(),
            text: d.text.clone(),
        })
        .collect();
    let search = SearchEngine::new(pages);

    // The user queries for a popular person.
    let query = world
        .entities_of_kind(facet_hierarchies::knowledge::EntityKind::Person)
        .next()
        .map(|e| e.name.clone())
        .expect("world has people");
    let hits = search.search(&query, 200);
    println!("query: {query:?} → {} results", hits.len());

    // Query-time database: the matching documents only (re-indexed).
    let result_docs: Vec<Document> = hits
        .iter()
        .enumerate()
        .map(|(i, h)| {
            let d = corpus.db.doc(facet_hierarchies::corpus::DocId(h.doc.0));
            Document {
                id: facet_hierarchies::corpus::DocId(i as u32),
                source: d.source,
                day: d.day,
                title: d.title.clone(),
                text: d.text.clone(),
            }
        })
        .collect();
    if result_docs.is_empty() {
        println!("no results; try a different query");
        return;
    }
    let result_db = TextDatabase::build(result_docs, &mut vocab, TermingOptions::default());

    // Facets of the result set.
    let wiki = build_wikipedia(&world, &WikipediaConfig::default());
    let graph = WikipediaGraph::new(&wiki.wiki, &wiki.redirects);
    let graph_res = CachedResource::new(WikiGraphResource::new(&graph));
    let tagger = NerTagger::from_world(&world);
    let ne = NamedEntityExtractor::new(tagger);
    let extractors: Vec<&dyn TermExtractor> = vec![&ne];
    let resources: Vec<&dyn ContextResource> = vec![&graph_res];
    let pipeline = FacetPipeline::new(
        extractors,
        resources,
        PipelineOptions {
            top_k: 150,
            min_df_c: 2,
            ..Default::default()
        },
    );
    let extraction = pipeline.run(&result_db, &mut vocab);
    let forest = pipeline.build_hierarchies(&extraction, &vocab);

    println!(
        "result-set facets ({} terms across {} facets):",
        forest.total_terms(),
        forest.trees.len()
    );
    print!("{}", forest.render(4));
}
