//! A growing news archive: index a month of news day by day with
//! `FacetIndex::append` instead of rebuilding the pipeline every day.
//!
//! ```sh
//! cargo run --release --example incremental_archive
//! ```
//!
//! This is the paper's MNYT scenario (one month of The New York Times)
//! under realistic operation: each day's stories arrive, the index
//! ingests only the new documents, resolves only the important terms it
//! has never seen before, and atomically publishes a fresh snapshot.
//! Readers browse whatever snapshot they hold — appends never block or
//! invalidate them.

use facet_hierarchies::core::{FacetIndex, PipelineOptions};
use facet_hierarchies::corpus::{DatasetRecipe, Document, RecipeKind};
use facet_hierarchies::ner::NerTagger;
use facet_hierarchies::resources::{CachedResource, ContextResource, WikiGraphResource};
use facet_hierarchies::termx::{NamedEntityExtractor, TermExtractor};
use facet_hierarchies::textkit::Vocabulary;
use facet_hierarchies::wikipedia::{build_wikipedia, WikipediaConfig, WikipediaGraph};

fn main() {
    // A scaled-down month of synthetic news (30 days, one source).
    let recipe = DatasetRecipe::scaled(RecipeKind::Mnyt, 0.02);
    let world = recipe.build_world();
    let mut vocab = Vocabulary::new();
    let corpus = recipe.build_corpus(&world, &mut vocab);
    let n_days = corpus.db.docs().iter().map(|d| d.day).max().unwrap_or(0) + 1;
    println!(
        "archive: {} stories across {} days\n",
        corpus.db.len(),
        n_days
    );

    // Resources and extractors, as in the quickstart.
    let wiki = build_wikipedia(&world, &WikipediaConfig::default());
    let graph = WikipediaGraph::new(&wiki.wiki, &wiki.redirects);
    let graph_res = CachedResource::new(WikiGraphResource::new(&graph));
    let tagger = NerTagger::from_world(&world);
    let ne = NamedEntityExtractor::new(tagger);
    let extractors: Vec<&dyn TermExtractor> = vec![&ne];
    let resources: Vec<&dyn ContextResource> = vec![&graph_res];

    // One persistent index for the whole month.
    let mut index = FacetIndex::new(
        extractors,
        resources,
        PipelineOptions {
            top_k: 400,
            ..Default::default()
        },
    );

    println!(
        "{:>4} {:>6} {:>10} {:>8} {:>8} {:>7}",
        "day", "docs", "new terms", "reused", "queries", "facets"
    );
    for day in 0..n_days {
        let batch: Vec<Document> = corpus
            .db
            .docs()
            .iter()
            .filter(|d| d.day == day)
            .cloned()
            .collect();
        if batch.is_empty() {
            continue;
        }
        let stats = index.append(batch).expect("day batches are well-formed");
        let snapshot = index.snapshot();
        println!(
            "{:>4} {:>6} {:>10} {:>8} {:>8} {:>7}",
            day + 1,
            stats.docs,
            stats.new_distinct_terms,
            stats.reused_terms,
            stats.resource_queries,
            snapshot.candidates().len()
        );
    }

    // Browse the final snapshot: frozen, lock-free, shareable.
    let snapshot = index.snapshot();
    println!(
        "\nfinal snapshot: generation {}, {} documents, {} facet terms",
        snapshot.generation(),
        snapshot.n_docs(),
        snapshot.candidates().len()
    );
    let engine = snapshot.browse();
    println!("top facets with refinement counts:");
    for (_, label, count) in engine.refinements(&[], None).into_iter().take(8) {
        println!("  {label:<30} ({count})");
    }
}
