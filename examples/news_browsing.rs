//! Faceted browsing over a news archive: the paper's motivating scenario
//! (Section I — exploring The New York Times archive by topic, location,
//! people, and more) driven end to end.
//!
//! ```sh
//! cargo run --release --example news_browsing
//! ```
//!
//! Builds the full pipeline, materializes the OLAP-style browse engine,
//! and walks a drill-down: start broad, narrow by two facet terms, and
//! show the refinement counts a faceted UI would render at each step.

use facet_hierarchies::core::{BrowseEngine, FacetPipeline, PipelineOptions};
use facet_hierarchies::corpus::{DatasetRecipe, RecipeKind};
use facet_hierarchies::ner::NerTagger;
use facet_hierarchies::resources::{CachedResource, ContextResource, WikiGraphResource};
use facet_hierarchies::termx::{NamedEntityExtractor, TermExtractor, WikipediaTitleExtractor};
use facet_hierarchies::textkit::Vocabulary;
use facet_hierarchies::wikipedia::{build_wikipedia, TitleIndex, WikipediaConfig, WikipediaGraph};

fn main() {
    let recipe = DatasetRecipe::scaled(RecipeKind::Snyt, 0.5);
    let world = recipe.build_world();
    let mut vocab = Vocabulary::new();
    let corpus = recipe.build_corpus(&world, &mut vocab);

    let wiki = build_wikipedia(&world, &WikipediaConfig::default());
    let graph = WikipediaGraph::new(&wiki.wiki, &wiki.redirects);
    let graph_res = CachedResource::new(WikiGraphResource::new(&graph));
    let tagger = NerTagger::from_world(&world);
    let ne = NamedEntityExtractor::new(tagger);
    let title_index = TitleIndex::build(&wiki.wiki, &wiki.redirects);
    let wiki_x = WikipediaTitleExtractor::new(&wiki.wiki, title_index);

    let extractors: Vec<&dyn TermExtractor> = vec![&ne, &wiki_x];
    let resources: Vec<&dyn ContextResource> = vec![&graph_res];
    let pipeline = FacetPipeline::new(
        extractors,
        resources,
        PipelineOptions {
            top_k: 600,
            ..Default::default()
        },
    );
    let extraction = pipeline.run(&corpus.db, &mut vocab);
    let forest = pipeline.build_hierarchies(&extraction, &vocab);
    let engine = BrowseEngine::new(forest, extraction.contextualized.doc_terms.clone());

    println!("archive: {} stories, {} facet terms\n", engine.n_docs(), {
        engine.forest().total_terms()
    });

    // Step 1: the top-level facets with their counts.
    println!("top-level facets:");
    let top = engine.refinements(&[], None);
    for (_, label, count) in top.iter().take(8) {
        println!("  {label:<28} ({count})");
    }

    // Step 2: drill into the largest facet.
    let Some((first_term, first_label, first_count)) = top.first().cloned() else {
        println!("no facets extracted");
        return;
    };
    println!("\nselect \"{first_label}\" → {first_count} stories");
    let node = engine.forest().find(&first_label).cloned();
    let refinements = engine.refinements(&[first_term], node.as_ref());
    println!("refinements under \"{first_label}\":");
    for (_, label, count) in refinements.iter().take(6) {
        println!("  {label:<28} ({count})");
    }

    // Step 3: dice with a second facet from a different tree.
    if let Some((second_term, second_label, _)) = top.get(1).cloned() {
        let slice = engine.select(&[first_term, second_term]);
        println!(
            "\nslice: \"{first_label}\" ∧ \"{second_label}\" → {} stories",
            slice.len()
        );
        for doc in slice.iter().take(3) {
            println!("  · {}", corpus.db.doc(*doc).title);
        }
    }
}
