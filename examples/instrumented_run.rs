//! An instrumented pipeline run: attach a [`Recorder`], run the paper's
//! pipeline, and inspect where the time went and which resources were
//! queried how often.
//!
//! ```sh
//! cargo run --release --example instrumented_run
//! ```
//!
//! The same recorder can be threaded through the experiment harness
//! (`GridOptions::recorder`) or enabled on the `experiments`/`diag`
//! binaries with `--obs <path.json>`.
//!
//! The second half of the example is a **chaos run**: one resource is
//! wrapped in a seeded [`FaultyResource`] and a [`ResilientResource`]
//! (retries + circuit breaker), and the recorder shows the retry and
//! breaker counters alongside the degraded-coverage provenance and the
//! [`FacetIndex::repair`] backfill.
//!
//! ```sh
//! cargo run --release --example instrumented_run -- --trace out.json
//! ```
//!
//! With `--trace <path>` the example instead runs a compact, fully
//! deterministic traced scenario (sharded append over a flaky resource
//! behind the resilience policy, everything on one shared
//! [`VirtualClock`]) and writes a Chrome trace-event JSON file —
//! loadable in `chrome://tracing` or <https://ui.perfetto.dev> — that is
//! byte-identical across runs. `--folded <path>` additionally writes
//! folded flamegraph stacks. See DESIGN.md section 15.

use facet_hierarchies::core::{FacetIndex, FacetPipeline, PipelineOptions, ShardedFacetIndex};
use facet_hierarchies::corpus::{DatasetRecipe, RecipeKind};
use facet_hierarchies::ner::NerTagger;
use facet_hierarchies::obs::Recorder;
use facet_hierarchies::resources::{
    BreakerConfig, CachedResource, ContextResource, ExpansionOptions, FaultPlan, FaultyResource,
    ResilientResource, VirtualClock, WikiGraphResource, WordNetHypernymsResource,
};
use facet_hierarchies::termx::{NamedEntityExtractor, TermExtractor, YahooTermExtractor};
use facet_hierarchies::textkit::Vocabulary;
use facet_hierarchies::wikipedia::{build_wikipedia, WikipediaConfig, WikipediaGraph};
use facet_hierarchies::wordnet::build_wordnet;

/// The `--trace` scenario: a sharded build + incremental append over a
/// flaky WordNet behind the resilience policy, traced end to end. The
/// tracer's clock **is** the resilience layer's [`VirtualClock`], the
/// sharded index runs a single shard, and expansion is serial, so the
/// whole traced region is deterministic and two runs export identical
/// bytes (the property `scripts/check.sh --trace-smoke` gates on).
fn traced_run(trace_out: &str, folded_out: Option<&str>) {
    use facet_hierarchies::obs::{Tracer, TracerConfig};
    use std::sync::Arc;

    let recipe = DatasetRecipe::scaled(RecipeKind::Snyt, 0.05);
    let world = recipe.build_world();
    let mut vocab = Vocabulary::new();
    let corpus = recipe.build_corpus(&world, &mut vocab);
    let wiki = build_wikipedia(&world, &WikipediaConfig::default());
    let wordnet = build_wordnet(&world);
    let graph = WikipediaGraph::new(&wiki.wiki, &wiki.redirects);
    let tagger = NerTagger::from_world(&world);
    let ne = NamedEntityExtractor::new(tagger);
    let yahoo = YahooTermExtractor::fit(&corpus.db, &vocab);

    let clock = VirtualClock::new();
    let tracer = Tracer::with_clock(TracerConfig::default(), Arc::new(clock.clone()));
    let recorder = Recorder::traced(tracer);

    // Exactly one transient failure per faulted term: every faulted
    // query exercises one retry (an `attempt` child span + a backoff
    // event) and then succeeds, so the build stays fully covered.
    let faulty = FaultyResource::new(
        WordNetHypernymsResource::new(&wordnet),
        FaultPlan::seeded(0xC0FFEE, 300).with_failures_per_term(1),
        clock.clone(),
    );
    let resilient = ResilientResource::new(faulty, clock.clone());
    let graph_res = WikiGraphResource::new(&graph);
    let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
    let resources: Vec<&dyn ContextResource> = vec![&graph_res, &resilient];
    let options = PipelineOptions {
        // Serial expansion keeps resource queries on the shard worker's
        // own thread, nested under its `append.shard0` span.
        expansion: ExpansionOptions { threads: 1 },
        ..Default::default()
    };

    let docs = corpus.db.docs().to_vec();
    let half = docs.len() / 2;
    {
        let run = recorder.span("run");
        run.attr("docs", docs.len() as u64);
        let mut index = ShardedFacetIndex::new(1, extractors, resources, options)
            .with_recorder(recorder.clone());
        index.append(docs[..half].to_vec()).expect("first append");
        index.append(docs[half..].to_vec()).expect("second append");
        println!(
            "traced build: {} docs in 2 appends, {} facet terms",
            docs.len(),
            index.snapshot().candidates().len()
        );
    }

    let tracer = recorder.tracer().expect("traced recorder");
    std::fs::write(trace_out, tracer.chrome_trace_json()).expect("write trace");
    println!(
        "wrote {trace_out} ({} traces, {} spans buffered) — open in chrome://tracing or https://ui.perfetto.dev",
        tracer.finished().len(),
        tracer.buffered_spans()
    );
    if let Some(folded) = folded_out {
        std::fs::write(folded, tracer.folded_stacks()).expect("write folded stacks");
        println!("wrote {folded} (folded flamegraph stacks)");
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_out: Option<String> = None;
    let mut folded_out: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--trace" => {
                trace_out = argv.get(i + 1).cloned();
                i += 2;
            }
            "--folded" => {
                folded_out = argv.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other} (supported: --trace <path>, --folded <path>)");
                std::process::exit(2);
            }
        }
    }
    if let Some(trace) = trace_out {
        traced_run(&trace, folded_out.as_deref());
        return;
    }

    // Corpus and substrates, as in the quickstart.
    let recipe = DatasetRecipe::scaled(RecipeKind::Snyt, 0.2);
    let world = recipe.build_world();
    let mut vocab = Vocabulary::new();
    let corpus = recipe.build_corpus(&world, &mut vocab);
    let wiki = build_wikipedia(&world, &WikipediaConfig::default());
    let wordnet = build_wordnet(&world);
    let graph = WikipediaGraph::new(&wiki.wiki, &wiki.redirects);
    let graph_res = CachedResource::new(WikiGraphResource::new(&graph));
    let wn_res = CachedResource::new(WordNetHypernymsResource::new(&wordnet));
    let tagger = NerTagger::from_world(&world);
    let ne = NamedEntityExtractor::new(tagger);

    // The recorder. `Recorder::disabled()` would make every record call
    // a no-op without touching the pipeline code below.
    let recorder = Recorder::enabled();

    let extractors: Vec<&dyn TermExtractor> = vec![&ne];
    let resources: Vec<&dyn ContextResource> = vec![&graph_res, &wn_res];
    let pipeline = FacetPipeline::new(
        extractors,
        resources,
        PipelineOptions {
            top_k: 400,
            ..Default::default()
        },
    )
    .with_recorder(recorder.clone());

    let extraction = pipeline.run(&corpus.db, &mut vocab);
    let forest = pipeline.build_hierarchies(&extraction, &vocab);
    println!(
        "{} documents -> {} candidates -> {} facet trees\n",
        corpus.db.len(),
        extraction.candidates.len(),
        forest.trees.len()
    );

    // Where the time went, per stage.
    let report = recorder.snapshot();
    print!("{}", report.stage_table());

    // Which resources were hot.
    println!("\ncounters:");
    for c in &report.counters {
        println!("  {:<40} {}", c.name, c.value);
    }
    println!("\nlatency/fan-out histograms (latency values are us):");
    for h in &report.histograms {
        println!(
            "  {:<40} n={} mean={} max={}",
            h.name,
            h.count,
            h.sum.checked_div(h.count).unwrap_or(0),
            h.max
        );
    }

    // Cache effectiveness (also exported via `GridOptions::recorder` in
    // the experiment harness).
    let s = graph_res.stats();
    println!(
        "\nwiki-graph cache: {} hits / {} misses ({:.0}% hit rate)",
        s.hits,
        s.misses,
        s.hit_rate() * 100.0
    );

    // The same report as machine-readable JSON (what `--obs` writes).
    let json = facet_hierarchies::jsonio::to_json_string_pretty(&report).expect("serialize");
    println!("\nJSON report is {} bytes; first lines:", json.len());
    for line in json.lines().take(12) {
        println!("  {line}");
    }

    // ── Chaos run ──────────────────────────────────────────────────────
    // The same corpus, but WordNet is flaky: a seeded fault plan makes
    // ~30% of terms fail deterministically, and a resilience policy
    // (retries with backoff on a virtual clock + a circuit breaker)
    // sits between the fault and the index. The recorder sees both
    // layers.
    println!("\n=== chaos run: flaky WordNet behind a resilience policy ===");
    let chaos_recorder = Recorder::enabled();
    let clock = VirtualClock::new();
    let faulty = FaultyResource::new(
        WordNetHypernymsResource::new(&wordnet),
        FaultPlan::seeded(0xC0FFEE, 300),
        clock.clone(),
    );
    let resilient = ResilientResource::new(faulty, clock.clone())
        .with_breaker(BreakerConfig {
            failure_threshold: 3,
            cooldown_us: 25_000,
            half_open_probes: 1,
        })
        .with_recorder(&chaos_recorder);
    let graph_res2 = CachedResource::new(WikiGraphResource::new(&graph));
    // Yahoo terms include common nouns, so WordNet hypernyms actually
    // shape the contextualized database here.
    let yahoo = YahooTermExtractor::fit(&corpus.db, &vocab);

    let chaos_extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
    let chaos_resources: Vec<&dyn ContextResource> = vec![&graph_res2, &resilient];
    let options = PipelineOptions {
        top_k: 400,
        // Single-threaded expansion keeps the breaker's shed set (which
        // depends on query order) reproducible for the demo.
        expansion: ExpansionOptions { threads: 1 },
        ..Default::default()
    };
    let mut index = FacetIndex::build(
        corpus.db.docs().to_vec(),
        chaos_extractors,
        chaos_resources,
        options.clone(),
    )
    .expect("chaos build")
    .with_recorder(chaos_recorder.clone());

    let snap = index.snapshot();
    println!(
        "build survived: {} facet terms, {} terms degraded, breaker now {:?}",
        snap.candidates().len(),
        snap.degraded().len(),
        resilient.breaker_state()
    );
    let chaos_report = chaos_recorder.snapshot();
    println!("resilience counters:");
    for c in &chaos_report.counters {
        if c.name.starts_with("resilient.") || c.name.ends_with(".failures") {
            println!("  {:<40} {}", c.name, c.value);
        }
    }

    // The outage ends: heal the fault, let the breaker cooldown elapse
    // on the virtual clock, and backfill only the degraded terms.
    resilient.inner().heal();
    clock.advance_us(25_000);
    let stats = index.repair().expect("repair");
    let snap = index.snapshot();
    println!(
        "\nrepair: re-queried {} terms, repaired {}, recomputed {} docs; fully covered: {}",
        stats.requeried_terms,
        stats.repaired_terms,
        stats.changed_docs,
        snap.is_fully_covered()
    );

    // The repaired index is identical to one that never saw a fault.
    let wn_clean = CachedResource::new(WordNetHypernymsResource::new(&wordnet));
    let graph_res3 = CachedResource::new(WikiGraphResource::new(&graph));
    let clean_extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
    let clean_resources: Vec<&dyn ContextResource> = vec![&graph_res3, &wn_clean];
    let clean = FacetIndex::build(
        corpus.db.docs().to_vec(),
        clean_extractors,
        clean_resources,
        options,
    )
    .expect("clean build");
    assert_eq!(snap.facet_terms(), clean.snapshot().facet_terms());
    println!("repaired snapshot matches the fault-free build");
}
