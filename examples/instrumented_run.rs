//! An instrumented pipeline run: attach a [`Recorder`], run the paper's
//! pipeline, and inspect where the time went and which resources were
//! queried how often.
//!
//! ```sh
//! cargo run --release --example instrumented_run
//! ```
//!
//! The same recorder can be threaded through the experiment harness
//! (`GridOptions::recorder`) or enabled on the `experiments`/`diag`
//! binaries with `--obs <path.json>`.

use facet_hierarchies::core::{FacetPipeline, PipelineOptions};
use facet_hierarchies::corpus::{DatasetRecipe, RecipeKind};
use facet_hierarchies::ner::NerTagger;
use facet_hierarchies::obs::Recorder;
use facet_hierarchies::resources::{
    CachedResource, ContextResource, WikiGraphResource, WordNetHypernymsResource,
};
use facet_hierarchies::termx::{NamedEntityExtractor, TermExtractor};
use facet_hierarchies::textkit::Vocabulary;
use facet_hierarchies::wikipedia::{build_wikipedia, WikipediaConfig, WikipediaGraph};
use facet_hierarchies::wordnet::build_wordnet;

fn main() {
    // Corpus and substrates, as in the quickstart.
    let recipe = DatasetRecipe::scaled(RecipeKind::Snyt, 0.2);
    let world = recipe.build_world();
    let mut vocab = Vocabulary::new();
    let corpus = recipe.build_corpus(&world, &mut vocab);
    let wiki = build_wikipedia(&world, &WikipediaConfig::default());
    let wordnet = build_wordnet(&world);
    let graph = WikipediaGraph::new(&wiki.wiki, &wiki.redirects);
    let graph_res = CachedResource::new(WikiGraphResource::new(&graph));
    let wn_res = CachedResource::new(WordNetHypernymsResource::new(&wordnet));
    let tagger = NerTagger::from_world(&world);
    let ne = NamedEntityExtractor::new(tagger);

    // The recorder. `Recorder::disabled()` would make every record call
    // a no-op without touching the pipeline code below.
    let recorder = Recorder::enabled();

    let extractors: Vec<&dyn TermExtractor> = vec![&ne];
    let resources: Vec<&dyn ContextResource> = vec![&graph_res, &wn_res];
    let pipeline = FacetPipeline::new(
        extractors,
        resources,
        PipelineOptions {
            top_k: 400,
            ..Default::default()
        },
    )
    .with_recorder(recorder.clone());

    let extraction = pipeline.run(&corpus.db, &mut vocab);
    let forest = pipeline.build_hierarchies(&extraction, &vocab);
    println!(
        "{} documents -> {} candidates -> {} facet trees\n",
        corpus.db.len(),
        extraction.candidates.len(),
        forest.trees.len()
    );

    // Where the time went, per stage.
    let report = recorder.snapshot();
    print!("{}", report.stage_table());

    // Which resources were hot.
    println!("\ncounters:");
    for c in &report.counters {
        println!("  {:<40} {}", c.name, c.value);
    }
    println!("\nlatency/fan-out histograms (latency values are us):");
    for h in &report.histograms {
        println!(
            "  {:<40} n={} mean={} max={}",
            h.name,
            h.count,
            h.sum.checked_div(h.count).unwrap_or(0),
            h.max
        );
    }

    // Cache effectiveness (also exported via `GridOptions::recorder` in
    // the experiment harness).
    let s = graph_res.stats();
    println!(
        "\nwiki-graph cache: {} hits / {} misses ({:.0}% hit rate)",
        s.hits,
        s.misses,
        s.hit_rate() * 100.0
    );

    // The same report as machine-readable JSON (what `--obs` writes).
    let json = facet_hierarchies::jsonio::to_json_string_pretty(&report).expect("serialize");
    println!("\nJSON report is {} bytes; first lines:", json.len());
    for line in json.lines().take(12) {
        println!("  {line}");
    }
}
