//! Plugging a domain-specific context resource into the pipeline.
//!
//! ```sh
//! cargo run --release --example custom_resource
//! ```
//!
//! The paper's conclusion (Section VII) argues that "it is relatively
//! straightforward to integrate in this framework other resources that
//! are useful within specialized contexts", giving financial glossaries
//! and taxonomies (Dow Jones Taxonomy Warehouse) as the example. This
//! example does exactly that: a hand-curated financial thesaurus is
//! implemented as a [`ContextResource`] and combined with the standard
//! resources; the distributional-analysis step automatically decides
//! which of its concepts matter for the corpus.

use facet_hierarchies::core::{FacetPipeline, PipelineOptions};
use facet_hierarchies::corpus::{DatasetRecipe, RecipeKind};
use facet_hierarchies::ner::NerTagger;
use facet_hierarchies::resources::{CachedResource, ContextResource, WikiGraphResource};
use facet_hierarchies::termx::{NamedEntityExtractor, TermExtractor, YahooTermExtractor};
use facet_hierarchies::textkit::Vocabulary;
use facet_hierarchies::wikipedia::{build_wikipedia, WikipediaConfig, WikipediaGraph};
use std::collections::HashMap;

/// A small financial ontology: term → broader financial concepts.
/// In practice this would be loaded from a taxonomy file.
struct FinancialThesaurus {
    broader: HashMap<&'static str, Vec<&'static str>>,
}

impl FinancialThesaurus {
    fn new() -> Self {
        let mut broader: HashMap<&'static str, Vec<&'static str>> = HashMap::new();
        for (term, parents) in [
            ("dividend", vec!["shareholder returns", "equity markets"]),
            ("shares", vec!["equity markets"]),
            ("portfolio", vec!["asset management"]),
            ("layoff", vec!["cost cutting", "corporate restructuring"]),
            ("buyout", vec!["mergers and acquisitions"]),
            ("acquisition", vec!["mergers and acquisitions"]),
            ("tariff", vec!["trade policy"]),
            ("embargo", vec!["trade policy", "sanctions"]),
            ("pension", vec!["retirement funds", "asset management"]),
            ("consumer prices", vec!["monetary policy"]),
        ] {
            broader.insert(term, parents);
        }
        Self { broader }
    }
}

impl ContextResource for FinancialThesaurus {
    fn name(&self) -> &'static str {
        "Financial Thesaurus"
    }
    fn context_terms(&self, term: &str) -> Vec<String> {
        self.broader
            .get(term)
            .map(|v| v.iter().map(|s| s.to_string()).collect())
            .unwrap_or_default()
    }
}

fn main() {
    let recipe = DatasetRecipe::scaled(RecipeKind::Snyt, 0.3);
    let world = recipe.build_world();
    let mut vocab = Vocabulary::new();
    let corpus = recipe.build_corpus(&world, &mut vocab);

    let wiki = build_wikipedia(&world, &WikipediaConfig::default());
    let graph = WikipediaGraph::new(&wiki.wiki, &wiki.redirects);
    let graph_res = CachedResource::new(WikiGraphResource::new(&graph));
    let thesaurus = FinancialThesaurus::new();

    let tagger = NerTagger::from_world(&world);
    let ne = NamedEntityExtractor::new(tagger);
    let yahoo = YahooTermExtractor::fit(&corpus.db, &vocab);

    let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
    let resources: Vec<&dyn ContextResource> = vec![&graph_res, &thesaurus];
    let pipeline = FacetPipeline::new(
        extractors,
        resources,
        PipelineOptions {
            top_k: 500,
            ..Default::default()
        },
    );
    let extraction = pipeline.run(&corpus.db, &mut vocab);

    // Which thesaurus concepts did the distributional analysis promote?
    let domain_terms: Vec<&str> = [
        "shareholder returns",
        "equity markets",
        "asset management",
        "corporate restructuring",
        "mergers and acquisitions",
        "trade policy",
        "sanctions",
        "monetary policy",
        "retirement funds",
        "cost cutting",
    ]
    .into_iter()
    .filter(|t| extraction.facet_terms(&vocab).contains(t))
    .collect();

    println!("facet terms: {}", extraction.candidates.len());
    println!("domain-specific facet terms promoted by the thesaurus:");
    for t in &domain_terms {
        let id = vocab.get(t).expect("selected terms are interned");
        let c = extraction.candidates.iter().find(|c| c.term == id).unwrap();
        println!(
            "  {:<28} df={} df_C={} -logλ={:.1}",
            t, c.df, c.df_c, c.score
        );
    }
    if domain_terms.is_empty() {
        println!("  (none passed the shift tests on this corpus sample)");
    }
}
