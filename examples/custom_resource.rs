//! Plugging a domain-specific context resource into the pipeline —
//! including what happens when that resource *fails*.
//!
//! ```sh
//! cargo run --release --example custom_resource
//! ```
//!
//! The paper's conclusion (Section VII) argues that "it is relatively
//! straightforward to integrate in this framework other resources that
//! are useful within specialized contexts", giving financial glossaries
//! and taxonomies (Dow Jones Taxonomy Warehouse) as the example. This
//! example does exactly that: a hand-curated financial thesaurus is
//! implemented as a [`ContextResource`] and combined with the standard
//! resources; the distributional-analysis step automatically decides
//! which of its concepts matter for the corpus.
//!
//! Real taxonomy services also have quotas and outages, so the thesaurus
//! here implements the **fallible** side of the trait
//! ([`ContextResource::try_context_terms`]): once its per-window query
//! quota is exhausted it returns a typed [`ResourceError`] instead of
//! answering. The index keeps building with the surviving resources,
//! records which terms lost coverage (and to which resource), and
//! [`FacetIndex::repair`] backfills exactly those terms once the quota
//! window resets.

use facet_hierarchies::core::{FacetIndex, PipelineOptions};
use facet_hierarchies::corpus::{DatasetRecipe, RecipeKind};
use facet_hierarchies::ner::NerTagger;
use facet_hierarchies::resources::{
    CachedResource, ContextResource, ExpansionOptions, FaultKind, ResourceError, WikiGraphResource,
};
use facet_hierarchies::termx::{NamedEntityExtractor, TermExtractor, YahooTermExtractor};
use facet_hierarchies::textkit::Vocabulary;
use facet_hierarchies::wikipedia::{build_wikipedia, WikipediaConfig, WikipediaGraph};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A small financial ontology: term → broader financial concepts, served
/// through a query quota like a real metered taxonomy API. In practice
/// the table would be loaded from a taxonomy file.
struct FinancialThesaurus {
    broader: HashMap<&'static str, Vec<&'static str>>,
    /// Queries left in the current window; 0 = every call is rejected.
    quota: AtomicU64,
}

impl FinancialThesaurus {
    fn new(quota: u64) -> Self {
        let mut broader: HashMap<&'static str, Vec<&'static str>> = HashMap::new();
        for (term, parents) in [
            ("dividend", vec!["shareholder returns", "equity markets"]),
            ("shares", vec!["equity markets"]),
            ("portfolio", vec!["asset management"]),
            ("layoff", vec!["cost cutting", "corporate restructuring"]),
            ("buyout", vec!["mergers and acquisitions"]),
            ("acquisition", vec!["mergers and acquisitions"]),
            ("tariff", vec!["trade policy"]),
            ("embargo", vec!["trade policy", "sanctions"]),
            ("pension", vec!["retirement funds", "asset management"]),
            ("consumer prices", vec!["monetary policy"]),
        ] {
            broader.insert(term, parents);
        }
        Self {
            broader,
            quota: AtomicU64::new(quota),
        }
    }

    /// A new billing window: `n` more queries allowed.
    fn reset_quota(&self, n: u64) {
        self.quota.store(n, Ordering::SeqCst);
    }
}

impl ContextResource for FinancialThesaurus {
    fn name(&self) -> &'static str {
        "Financial Thesaurus"
    }

    // The infallible view degrades failures to "no context" — callers
    // that care about coverage use try_context_terms.
    fn context_terms(&self, term: &str) -> Vec<String> {
        self.try_context_terms(term).unwrap_or_default()
    }

    fn try_context_terms(&self, term: &str) -> Result<Vec<String>, ResourceError> {
        let admitted = self
            .quota
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |q| q.checked_sub(1))
            .is_ok();
        if !admitted {
            // Overload is retryable: the caller may retry later (e.g.
            // after the quota window resets); a malformed-request error
            // would be FaultKind::Permanent instead.
            return Err(ResourceError::new(
                self.name(),
                FaultKind::Overload,
                "query quota exhausted for this window",
            ));
        }
        Ok(self
            .broader
            .get(term)
            .map(|v| v.iter().map(|s| s.to_string()).collect())
            .unwrap_or_default())
    }
}

fn main() {
    let recipe = DatasetRecipe::scaled(RecipeKind::Snyt, 0.3);
    let world = recipe.build_world();
    let mut vocab = Vocabulary::new();
    let corpus = recipe.build_corpus(&world, &mut vocab);

    let wiki = build_wikipedia(&world, &WikipediaConfig::default());
    let graph = WikipediaGraph::new(&wiki.wiki, &wiki.redirects);
    let graph_res = CachedResource::new(WikiGraphResource::new(&graph));
    // A deliberately tight quota: the build will exhaust it mid-expansion.
    let thesaurus = FinancialThesaurus::new(8);

    let tagger = NerTagger::from_world(&world);
    let ne = NamedEntityExtractor::new(tagger);
    let yahoo = YahooTermExtractor::fit(&corpus.db, &vocab);

    let extractors: Vec<&dyn TermExtractor> = vec![&ne, &yahoo];
    let resources: Vec<&dyn ContextResource> = vec![&graph_res, &thesaurus];
    let mut index = FacetIndex::build(
        corpus.db.docs().to_vec(),
        extractors,
        resources,
        PipelineOptions {
            top_k: 500,
            // Serial expansion so the quota cutoff point is reproducible.
            expansion: ExpansionOptions { threads: 1 },
            ..Default::default()
        },
    )
    .expect("index build");

    // The build survived the quota exhaustion; coverage is degraded, not
    // lost, and the snapshot says exactly which terms are affected.
    let snap = index.snapshot();
    println!("facet terms: {}", snap.candidates().len());
    println!(
        "terms with degraded coverage: {} (of {} resolved)",
        snap.degraded().len(),
        index.resolved_terms()
    );
    for (term, failed) in snap.degraded().iter().take(5) {
        println!("  {term:<28} missing: {}", failed.join(", "));
    }

    // The quota window resets; repair() re-queries only the degraded
    // terms and publishes a converged snapshot.
    thesaurus.reset_quota(u64::MAX);
    let stats = index.repair().expect("repair");
    println!(
        "\nrepair: re-queried {} terms, repaired {}, recomputed {} documents (generation {})",
        stats.requeried_terms, stats.repaired_terms, stats.changed_docs, stats.generation
    );
    let snap = index.snapshot();
    assert!(snap.is_fully_covered());

    // Which thesaurus concepts did the distributional analysis promote?
    let facet_terms = snap.facet_terms();
    let domain_terms: Vec<&str> = [
        "shareholder returns",
        "equity markets",
        "asset management",
        "corporate restructuring",
        "mergers and acquisitions",
        "trade policy",
        "sanctions",
        "monetary policy",
        "retirement funds",
        "cost cutting",
    ]
    .into_iter()
    .filter(|t| facet_terms.contains(t))
    .collect();

    println!("\ndomain-specific facet terms promoted by the thesaurus:");
    for t in &domain_terms {
        let id = snap.vocab().get(t).expect("selected terms are interned");
        let c = snap
            .candidates()
            .iter()
            .find(|c| c.term == id)
            .expect("facet term has a candidate row");
        println!(
            "  {:<28} df={} df_C={} -logλ={:.1}",
            t, c.df, c.df_c, c.score
        );
    }
    if domain_terms.is_empty() {
        println!("  (none passed the shift tests on this corpus sample)");
    }
}
